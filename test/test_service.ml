(* Unit tests for the supervised parallel conversion service
   (lib/service) and the fault-spec machinery it leans on: bounded
   queue, order preservation, backpressure, retry masking of transient
   internal failures, fail-fast classes, deadlines, graceful drain, and
   the circuit breaker's open/degrade/probe/close cycle. *)

module S = Service.Supervisor
module B = Service.Bqueue
module Error = Robust.Error
module Budget = Robust.Budget
module Faults = Robust.Faults

let convert_real input =
  match
    Reader.read ~mode:Fp.Rounding.To_nearest_even Fp.Format_spec.binary64 input
  with
  | Error _ as e -> e
  | Ok v ->
    Dragon.Printer.print_value ~base:10 ~mode:Fp.Rounding.To_nearest_even
      ~strategy:Dragon.Scaling.Fast_estimate ~notation:Dragon.Render.Auto
      Fp.Format_spec.binary64 v

(* Run a batch through a fresh service; replies are collected on the
   collector domain and read after shutdown (joined, so safely
   published). *)
let collect ?(jobs = 2) ?(capacity = 8) ?retry ?breaker ?fallback ?deadline_ms
    convert inputs =
  let replies = ref [] in
  let svc =
    S.start ~jobs ~queue_capacity:capacity ?retry ?breaker ?fallback
      ~emit:(fun r -> replies := r :: !replies)
      convert
  in
  List.iteri
    (fun i input -> S.submit svc ?deadline_ms ~lineno:(i + 1) input)
    inputs;
  let stats = S.shutdown svc in
  (List.rev !replies, stats)

let fast_retry =
  { S.default_retry with S.backoff_ms = 0.02; backoff_cap_ms = 0.2 }

(* ------------------------------------------------------------------ *)
(* Faults: spec parsing, warning list, counters, probabilistic arming *)

let schedule_t : Faults.schedule Alcotest.testable =
  Alcotest.testable
    (fun ppf -> function
      | Faults.Probability p -> Format.fprintf ppf "Probability %g" p
      | Faults.At_call k -> Format.fprintf ppf "At_call %d" k)
    (fun a b ->
      match (a, b) with
      | Faults.Probability x, Faults.Probability y -> Float.abs (x -. y) < 1e-9
      | Faults.At_call x, Faults.At_call y -> x = y
      | _ -> false)

let test_parse_spec () =
  let check name spec armed bad =
    let a, b = Faults.parse_spec spec in
    Alcotest.(check (list (pair string schedule_t))) (name ^ " armed") armed a;
    Alcotest.(check (list string)) (name ^ " rejected") bad b
  in
  let p x = Faults.Probability x in
  check "bare point" "nat.divmod" [ ("nat.divmod", p 1.0) ] [];
  check "probability" "nat.divmod:0.01" [ ("nat.divmod", p 0.01) ] [];
  check "mixed" "nat.divmod:0.5,scaling.scale"
    [ ("nat.divmod", p 0.5); ("scaling.scale", p 1.0) ]
    [];
  check "unknown point" "bogus" [] [ "bogus" ];
  check "unknown among known" "nat.pow,bogus,scaling.power"
    [ ("nat.pow", p 1.0); ("scaling.power", p 1.0) ]
    [ "bogus" ];
  check "malformed probability" "nat.pow:banana" [] [ "nat.pow:banana" ];
  check "probability out of range" "nat.pow:1.5" [] [ "nat.pow:1.5" ];
  check "empty entries skipped" ", ,nat.divmod," [ ("nat.divmod", p 1.0) ] [];
  check "unknown with probability" "no.such:0.5" [] [ "no.such:0.5" ];
  (* replayable schedules: point@req=k *)
  check "at-call schedule" "net.partial-write@req=500"
    [ ("net.partial-write", Faults.At_call 500) ]
    [];
  check "at-call mixed" "nat.divmod:0.5,service.worker-kill@req=3"
    [ ("nat.divmod", p 0.5); ("service.worker-kill", Faults.At_call 3) ]
    [];
  check "at-call zero rejected" "nat.divmod@req=0" [] [ "nat.divmod@req=0" ];
  check "at-call malformed" "nat.divmod@req=x" [] [ "nat.divmod@req=x" ];
  check "at-call bad keyword" "nat.divmod@call=3" [] [ "nat.divmod@call=3" ];
  check "at-call unknown point" "no.such@req=2" [] [ "no.such@req=2" ]

let test_at_call_schedule () =
  Faults.disarm_all ();
  Faults.reset_trip_counts ();
  Faults.reset_call_counts ();
  Faults.arm_at ~call:3 "net.malformed-frame";
  Alcotest.(check (option schedule_t))
    "schedule readable"
    (Some (Faults.At_call 3))
    (Faults.schedule_of "net.malformed-frame");
  Alcotest.(check (option (float 1e-9)))
    "no probability for scheduled point" None
    (Faults.probability "net.malformed-frame");
  Alcotest.(check string)
    "spec round-trips" "net.malformed-frame@req=3" (Faults.spec_string ());
  let fired = List.init 6 (fun _ -> Faults.fires "net.malformed-frame") in
  Alcotest.(check (list bool))
    "fires exactly on the 3rd consult"
    [ false; false; true; false; false; false ]
    fired;
  Alcotest.(check int) "consults counted" 6
    (Faults.call_count "net.malformed-frame");
  Alcotest.(check int) "one trip" 1 (Faults.trip_count "net.malformed-frame");
  (* resetting the consult counters replays the schedule exactly *)
  Faults.reset_call_counts ();
  let replay = List.init 3 (fun _ -> Faults.fires "net.malformed-frame") in
  Alcotest.(check (list bool))
    "replay after reset" [ false; false; true ] replay;
  Faults.disarm_all ();
  Faults.reset_trip_counts ();
  Faults.reset_call_counts ()

let test_trip_counters () =
  Faults.disarm_all ();
  Faults.reset_trip_counts ();
  Alcotest.(check int) "reset" 0 (Faults.total_trips ());
  let r =
    Error.catch (fun () ->
        Faults.with_fault "nat.divmod" (fun () -> Faults.trip "nat.divmod"))
  in
  (match r with
  | Error (Error.Internal { where = "nat.divmod"; _ }) -> ()
  | _ -> Alcotest.fail "expected injected internal error");
  Alcotest.(check int) "one trip counted" 1 (Faults.trip_count "nat.divmod");
  Alcotest.(check int) "total" 1 (Faults.total_trips ());
  Faults.reset_trip_counts ();
  Alcotest.(check int) "reset again" 0 (Faults.trip_count "nat.divmod")

let test_probabilistic_arming () =
  Faults.disarm_all ();
  (* probability 0: armed but never fires *)
  Faults.with_fault ~probability:0.0 "nat.divmod" (fun () ->
      Alcotest.(check bool) "armed" true (Faults.armed "nat.divmod");
      Alcotest.(check (option (float 1e-9)))
        "probability readable" (Some 0.0)
        (Faults.probability "nat.divmod");
      for _ = 1 to 200 do
        match Error.catch (fun () -> Faults.trip "nat.divmod") with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "p=0 must never trip"
      done);
  (* probability 1: always fires; a real conversion fails *)
  Faults.with_fault ~probability:1.0 "nat.divmod" (fun () ->
      match convert_real "0.1" with
      | Error (Error.Internal _) -> ()
      | _ -> Alcotest.fail "p=1 must fail the conversion");
  Alcotest.(check bool) "disarmed after" false (Faults.armed "nat.divmod");
  match convert_real "0.1" with
  | Ok s -> Alcotest.(check string) "clean again" "0.1" s
  | Error e -> Alcotest.fail (Error.to_string e)

(* ------------------------------------------------------------------ *)
(* Bounded queue *)

let test_bqueue () =
  let q = B.create ~capacity:2 in
  (* a producer pushing past the capacity blocks until the consumer
     drains; the join below proves it completes without deadlock *)
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to 5 do
          B.put q i
        done;
        B.close q)
  in
  let got = ref [] in
  let rec drain () =
    match B.take q with
    | Some x ->
      got := x :: !got;
      Unix.sleepf 0.002;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5 ] (List.rev !got);
  Alcotest.(check bool) "closed" true (B.is_closed q);
  Alcotest.(check bool) "put after close raises" true
    (match B.put q 6 with exception B.Closed -> true | () -> false);
  Alcotest.(check (option int)) "take after close drained" None (B.take q)

(* ------------------------------------------------------------------ *)
(* Service basics *)

let test_order_preserved () =
  let inputs = List.init 300 (fun i -> string_of_int i) in
  let replies, stats =
    collect ~jobs:4 ~capacity:16 (fun s -> Ok ("v" ^ s)) inputs
  in
  Alcotest.(check int) "all replies" 300 (List.length replies);
  List.iteri
    (fun i (r : S.reply) ->
      Alcotest.(check int) "lineno order" (i + 1) r.S.lineno;
      match r.S.outcome with
      | S.Done s ->
        Alcotest.(check string) "payload" ("v" ^ string_of_int i) s
      | _ -> Alcotest.fail "expected Done")
    replies;
  Alcotest.(check int) "submitted" 300 stats.S.submitted;
  Alcotest.(check int) "completed" 300 stats.S.completed;
  Alcotest.(check int) "succeeded" 300 stats.S.succeeded;
  Alcotest.(check string) "breaker closed" "closed" stats.S.breaker_state

let test_backpressure_bound () =
  let inputs = List.init 50 (fun i -> string_of_int i) in
  let convert s =
    Unix.sleepf 0.001;
    Ok s
  in
  let replies, stats = collect ~jobs:2 ~capacity:4 convert inputs in
  Alcotest.(check int) "all drained" 50 (List.length replies);
  Alcotest.(check bool)
    (Printf.sprintf "in-flight bounded by capacity (%d <= 4)"
       stats.S.max_in_flight)
    true
    (stats.S.max_in_flight <= 4)

let test_real_pipeline_parallel () =
  let inputs =
    [ "0.1"; "1e23"; "2.5e-1"; "9007199254740993"; "5e-324"; "1e999999999" ]
  in
  let replies, _ = collect ~jobs:3 convert_real inputs in
  let outs =
    List.map
      (fun (r : S.reply) ->
        match r.S.outcome with S.Done s -> s | _ -> "<fail>")
      replies
  in
  Alcotest.(check (list string)) "parallel pipeline output"
    [ "0.1"; "1e23"; "0.25"; "9007199254740992.0"; "5e-324"; "inf" ]
    outs

(* ------------------------------------------------------------------ *)
(* Retry policy *)

let test_retry_masks_transient () =
  (* every input fails with Internal on its first attempt and succeeds
     on the second: retries must mask all of them *)
  let seen : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let m = Mutex.create () in
  let convert input =
    Mutex.lock m;
    let n = Option.value (Hashtbl.find_opt seen input) ~default:0 in
    Hashtbl.replace seen input (n + 1);
    Mutex.unlock m;
    if n = 0 then Error (Error.internal ~where:"test" "transient")
    else Ok input
  in
  let inputs = List.init 60 (fun i -> string_of_int i) in
  let replies, stats = collect ~jobs:3 ~retry:fast_retry convert inputs in
  List.iter
    (fun (r : S.reply) ->
      match r.S.outcome with
      | S.Done s -> Alcotest.(check string) "masked" r.S.input s
      | _ -> Alcotest.fail "transient failure was not retried")
    replies;
  Alcotest.(check int) "one retry per input" 60 stats.S.retries;
  Alcotest.(check int) "no surviving internal errors" 0
    stats.S.internal_failures

let test_fail_fast_classes () =
  (* Syntax/Range/Budget never retry, even with a generous policy *)
  let calls = Atomic.make 0 in
  let convert input =
    Atomic.incr calls;
    match input with
    | "s" -> Error (Error.syntax ~input "nope")
    | "r" -> Error (Error.range ~what:"test" "nope")
    | _ -> Error (Error.budget ~what:"test" ~limit:1 ~got:2)
  in
  let replies, stats =
    collect ~jobs:2 ~retry:{ fast_retry with S.max_retries = 5 } convert
      [ "s"; "r"; "b" ]
  in
  List.iter
    (fun (r : S.reply) ->
      Alcotest.(check int) "single attempt" 1 r.S.attempts)
    replies;
  Alcotest.(check int) "three calls total" 3 (Atomic.get calls);
  Alcotest.(check int) "no retries" 0 stats.S.retries;
  Alcotest.(check int) "syntax counted" 1 stats.S.syntax_failures;
  Alcotest.(check int) "range counted" 1 stats.S.range_failures;
  Alcotest.(check int) "budget counted" 1 stats.S.budget_failures;
  Alcotest.(check string) "breaker unaffected" "closed" stats.S.breaker_state

let test_retry_exhaustion_surfaces () =
  let convert _ = Error (Error.internal ~where:"test" "permanent") in
  let replies, stats =
    collect ~jobs:1 ~retry:{ fast_retry with S.max_retries = 2 } convert
      [ "x" ]
  in
  (match replies with
  | [ { S.outcome = S.Failed (Error.Internal _); attempts = 3; _ } ] -> ()
  | [ r ] ->
    Alcotest.failf "expected Failed Internal after 3 attempts, got %d attempts"
      r.S.attempts
  | _ -> Alcotest.fail "expected one reply");
  Alcotest.(check int) "two retries recorded" 2 stats.S.retries;
  Alcotest.(check int) "internal failure surfaced" 1 stats.S.internal_failures

(* ------------------------------------------------------------------ *)
(* Deadlines *)

let test_deadline_zero () =
  let t0 = Unix.gettimeofday () in
  let replies, stats = collect ~jobs:2 ~deadline_ms:0 convert_real [ "0.1" ] in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match replies with
  | [ { S.outcome = S.Failed (Error.Budget { what; _ }); attempts = 0; _ } ] ->
    Alcotest.(check string) "timeout error" Budget.deadline_what what
  | _ -> Alcotest.fail "expected a structured timeout with zero attempts");
  Alcotest.(check int) "counted as budget class" 1 stats.S.budget_failures;
  Alcotest.(check bool) "bounded time" true (elapsed < 5.0)

let test_deadline_cuts_running_conversion () =
  (* a conversion stuck in a digit-loop-style spin is cut off by the
     cooperative deadline check at the budget check sites *)
  let convert _ =
    match
      Error.catch (fun () ->
          while true do
            Budget.check_bignum_bits 0
          done)
    with
    | Ok () -> Error (Error.internal ~where:"test" "unreachable")
    | Error e -> Error e
  in
  let t0 = Unix.gettimeofday () in
  let replies, _ = collect ~jobs:1 ~deadline_ms:30 convert [ "spin" ] in
  let elapsed = Unix.gettimeofday () -. t0 in
  (match replies with
  | [ { S.outcome = S.Failed (Error.Budget { what; _ }); _ } ] ->
    Alcotest.(check string) "timeout error" Budget.deadline_what what
  | _ -> Alcotest.fail "expected a deadline timeout");
  Alcotest.(check bool)
    (Printf.sprintf "cut off cooperatively (%.3fs)" elapsed)
    true (elapsed < 5.0)

(* ------------------------------------------------------------------ *)
(* Shutdown drain *)

let test_shutdown_drains_everything () =
  let convert s =
    Unix.sleepf 0.002;
    Ok s
  in
  let inputs = List.init 40 (fun i -> string_of_int i) in
  (* shutdown is called immediately after the last submit, with most
     requests still queued: none may be dropped *)
  let replies, stats = collect ~jobs:3 ~capacity:64 convert inputs in
  Alcotest.(check int) "every request emitted" 40 (List.length replies);
  Alcotest.(check int) "completed = submitted" stats.S.submitted
    stats.S.completed;
  List.iteri
    (fun i (r : S.reply) ->
      Alcotest.(check int) "drain preserves order" (i + 1) r.S.lineno)
    replies

let test_submit_after_shutdown () =
  let svc = S.start ~jobs:1 ~emit:(fun _ -> ()) (fun s -> Ok s) in
  ignore (S.shutdown svc);
  Alcotest.(check bool) "submit after shutdown rejected" true
    (match S.submit svc ~lineno:1 "x" with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* shutdown is idempotent *)
  let stats = S.shutdown svc in
  Alcotest.(check int) "idempotent shutdown" 0 stats.S.submitted

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let test_breaker_cycle () =
  (* failure is input-driven ("bad" lines), so the breaker's trajectory
     depends only on processing order, not on scheduling *)
  let convert input =
    if input = "bad" then Error (Error.internal ~where:"test" "down")
    else Ok "ok"
  in
  let replies = ref [] in
  let emitted = Atomic.make 0 in
  let svc =
    S.start ~jobs:1 ~queue_capacity:8
      ~retry:{ fast_retry with S.max_retries = 0 }
      ~breaker:{ Service.Breaker.failure_threshold = 3; cooldown_ms = 50 }
      ~emit:(fun r ->
        replies := r :: !replies;
        Atomic.incr emitted)
      convert
  in
  (* three consecutive internal failures open the breaker, then two
     healthy inputs arrive while it is open: they must degrade to the
     %.17g fallback instead of being refused *)
  for i = 1 to 3 do
    S.submit svc ~lineno:i "bad"
  done;
  for i = 4 to 5 do
    S.submit svc ~lineno:i "1.5"
  done;
  (* wait until all five are emitted (the breaker opened at reply 3),
     then sit out the cooldown: the half-open probe must run the real
     pipeline and close the breaker again *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get emitted < 5 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.002
  done;
  Alcotest.(check int) "first five emitted" 5 (Atomic.get emitted);
  Unix.sleepf 0.08;
  S.submit svc ~lineno:6 "2.5";
  S.submit svc ~lineno:7 "2.5";
  let stats = S.shutdown svc in
  let outcomes =
    List.rev_map
      (fun (r : S.reply) ->
        match r.S.outcome with
        | S.Done s -> "done:" ^ s
        | S.Degraded s -> "degraded:" ^ s
        | S.Failed e -> "failed:" ^ Error.category e)
      !replies
  in
  Alcotest.(check (list string)) "open, degrade, probe, close"
    [
      "failed:internal";
      "failed:internal";
      "failed:internal";
      "degraded:1.5";
      "degraded:1.5";
      "done:ok";
      "done:ok";
    ]
    outcomes;
  Alcotest.(check int) "one trip" 1 stats.S.breaker_trips;
  Alcotest.(check int) "two degraded" 2 stats.S.degraded;
  Alcotest.(check string) "breaker recovered" "closed" stats.S.breaker_state

let test_breaker_fallback_unparseable () =
  (* while open, an input even the host parser rejects fails with a
     structured syntax error — still no escaping exception *)
  let convert _ = Error (Error.internal ~where:"test" "down") in
  let replies, stats =
    collect ~jobs:1
      ~retry:{ fast_retry with S.max_retries = 0 }
      ~breaker:{ Service.Breaker.failure_threshold = 1; cooldown_ms = 10_000 }
      convert
      [ "1.5"; "not-a-number" ]
  in
  (match replies with
  | [ { S.outcome = S.Failed (Error.Internal _); _ };
      { S.outcome = S.Failed (Error.Syntax _); _ } ] -> ()
  | _ -> Alcotest.fail "expected internal failure then fallback syntax error");
  Alcotest.(check string) "stuck open without a probe window" "open"
    stats.S.breaker_state

(* Direct concurrency tests of the breaker state machine: transitions
   are mutex-serialised, so races between domains must never produce
   more than one half-open probe, an invalid state name, or a lost
   trip. *)

let test_breaker_concurrent_trips () =
  let b =
    Service.Breaker.create
      ~policy:{ Service.Breaker.failure_threshold = 4; cooldown_ms = 10_000 }
      ()
  in
  (* 4 domains x 25 failures: however the threshold crossing interleaves,
     the breaker ends open having tripped at least once — and with no
     successes, consecutive-failure counting can never reset, so exactly
     one trip is observable (the cooldown far exceeds the test) *)
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              Service.Breaker.record_failure b
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check string) "open after concurrent trips" "open"
    (Service.Breaker.state_name b);
  Alcotest.(check int) "one trip" 1 (Service.Breaker.trips b);
  Alcotest.(check bool) "admission degrades" true
    (Service.Breaker.admit b = `Fallback)

let test_breaker_single_probe_race () =
  let b =
    Service.Breaker.create
      ~policy:{ Service.Breaker.failure_threshold = 1; cooldown_ms = 20 }
      ()
  in
  Service.Breaker.record_failure b;
  Alcotest.(check string) "opened" "open" (Service.Breaker.state_name b);
  Unix.sleepf 0.05;
  (* the cooldown has elapsed: 8 domains race admit; exactly one may win
     the half-open probe, everyone else must be diverted to the fallback *)
  let outcomes = Array.make 8 `Fallback in
  let ds =
    List.init 8 (fun i ->
        Domain.spawn (fun () -> outcomes.(i) <- Service.Breaker.admit b))
  in
  List.iter Domain.join ds;
  let probes =
    Array.fold_left
      (fun n o -> match o with `Probe -> n + 1 | _ -> n)
      0 outcomes
  in
  let proceeds =
    Array.fold_left
      (fun n o -> match o with `Proceed -> n + 1 | _ -> n)
      0 outcomes
  in
  Alcotest.(check int) "exactly one probe" 1 probes;
  Alcotest.(check int) "no one proceeds past an open breaker" 0 proceeds;
  Alcotest.(check string) "half-open while probing" "half-open"
    (Service.Breaker.state_name b);
  (* probe outcome closes it; a concurrent failure recorded later
     re-opens — transitions stay coherent *)
  Service.Breaker.record_success b;
  Alcotest.(check string) "probe success closes" "closed"
    (Service.Breaker.state_name b)

let test_breaker_concurrent_cycle () =
  (* mixed success/failure traffic from several domains through full
     open -> half-open -> closed cycles: state must always be one of the
     three names and admit must never raise *)
  let b =
    Service.Breaker.create
      ~policy:{ Service.Breaker.failure_threshold = 2; cooldown_ms = 2 }
      ()
  in
  let bad_state = Atomic.make 0 in
  let ds =
    List.init 4 (fun seed ->
        Domain.spawn (fun () ->
            let st = Random.State.make [| seed; 7 |] in
            for _ = 1 to 2_000 do
              (match Service.Breaker.admit b with
              | `Proceed | `Probe ->
                if Random.State.int st 3 = 0 then
                  Service.Breaker.record_failure b
                else Service.Breaker.record_success b
              | `Fallback -> ());
              match Service.Breaker.state_name b with
              | "closed" | "open" | "half-open" -> ()
              | _ -> Atomic.incr bad_state
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "state always coherent" 0 (Atomic.get bad_state);
  Alcotest.(check bool) "cycled under contention" true
    (Service.Breaker.trips b >= 1);
  (* converges: drive it closed deterministically from one domain *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec close_it () =
    if Service.Breaker.state_name b <> "closed" then begin
      (match Service.Breaker.admit b with
      | `Probe | `Proceed -> Service.Breaker.record_success b
      | `Fallback -> Unix.sleepf 0.005);
      if Unix.gettimeofday () < deadline then close_it ()
    end
  in
  close_it ();
  Alcotest.(check string) "recovers to closed" "closed"
    (Service.Breaker.state_name b)

(* ------------------------------------------------------------------ *)
(* Flight recorder: a worker crash dumps the ring naming the poisoned
   request *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  at 0

let test_flight_dump_on_crash () =
  let dump_file = Filename.temp_file "bdflight" ".jsonl" in
  Sys.remove dump_file;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Flight.set_enabled false;
      Telemetry.Flight.set_dump_path None;
      Telemetry.Flight.clear ();
      Faults.disarm_all ();
      Faults.reset_trip_counts ();
      Faults.reset_call_counts ();
      if Sys.file_exists dump_file then Sys.remove dump_file)
    (fun () ->
      Telemetry.Flight.clear ();
      Telemetry.Flight.set_enabled true;
      Telemetry.Flight.set_dump_path (Some dump_file);
      let dumps_before = Telemetry.Flight.dump_count () in
      (* one worker, kill on its 3rd dequeue: the poisoned request is
         deterministically the third input *)
      Faults.disarm_all ();
      Faults.reset_call_counts ();
      Faults.arm_at ~call:3 "service.worker-kill";
      let inputs = [ "0.1"; "0.2"; "0.3"; "0.4" ] in
      let replies, stats = collect ~jobs:1 convert_real inputs in
      Alcotest.(check int) "all inputs answered" 4 (List.length replies);
      Alcotest.(check int) "one crash" 1 stats.S.crashes;
      Alcotest.(check int) "one respawn" 1 stats.S.respawns;
      Alcotest.(check int) "one dump written" (dumps_before + 1)
        (Telemetry.Flight.dump_count ());
      let dump = slurp dump_file in
      Alcotest.(check bool) "dump names its reason" true
        (contains dump {|"reason":"worker-crash"|});
      Alcotest.(check bool) "crash event names the poisoned request" true
        (contains dump "exn=Service__Supervisor.Worker_killed input=0.3");
      Alcotest.(check bool) "service-start for the poisoned request" true
        (contains dump {|"kind":"service-start","detail":"worker=0 input=0.3"|});
      Alcotest.(check bool) "fault trip recorded" true
        (contains dump {|"kind":"fault-trip","detail":"service.worker-kill"|}))

(* ------------------------------------------------------------------ *)

let () =
  Faults.disarm_all ();
  Alcotest.run "service"
    [
      ( "faults",
        [
          Alcotest.test_case "parse_spec" `Quick test_parse_spec;
          Alcotest.test_case "at-call schedule" `Quick test_at_call_schedule;
          Alcotest.test_case "trip counters" `Quick test_trip_counters;
          Alcotest.test_case "probabilistic arming" `Quick
            test_probabilistic_arming;
        ] );
      ("bqueue", [ Alcotest.test_case "bounded queue" `Quick test_bqueue ]);
      ( "supervisor",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "backpressure bound" `Quick
            test_backpressure_bound;
          Alcotest.test_case "real pipeline parallel" `Quick
            test_real_pipeline_parallel;
          Alcotest.test_case "retry masks transient" `Quick
            test_retry_masks_transient;
          Alcotest.test_case "fail fast classes" `Quick test_fail_fast_classes;
          Alcotest.test_case "retry exhaustion surfaces" `Quick
            test_retry_exhaustion_surfaces;
          Alcotest.test_case "deadline zero" `Quick test_deadline_zero;
          Alcotest.test_case "deadline cuts running conversion" `Quick
            test_deadline_cuts_running_conversion;
          Alcotest.test_case "shutdown drains everything" `Quick
            test_shutdown_drains_everything;
          Alcotest.test_case "submit after shutdown" `Quick
            test_submit_after_shutdown;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "open, degrade, probe, close" `Quick
            test_breaker_cycle;
          Alcotest.test_case "fallback on unparseable input" `Quick
            test_breaker_fallback_unparseable;
          Alcotest.test_case "concurrent trips" `Quick
            test_breaker_concurrent_trips;
          Alcotest.test_case "single probe under race" `Quick
            test_breaker_single_probe_race;
          Alcotest.test_case "concurrent open/close cycle" `Quick
            test_breaker_concurrent_cycle;
        ] );
      ( "flight",
        [
          Alcotest.test_case "crash dumps the poisoned request" `Quick
            test_flight_dump_on_crash;
        ] );
    ]
