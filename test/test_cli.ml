(* End-to-end tests of the bdprint command-line tool: run the built
   executable and check its stdout. *)

let bdprint args =
  (* this test binary lives in _build/default/test; the CLI next door *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/bdprint.exe"
  in
  let tmp = Filename.temp_file "bdprint" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>/dev/null" exe args tmp in
  let status = Sys.command cmd in
  let ic = open_in tmp in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  (status, List.rev !lines)

let check_output name args expected =
  let status, lines = bdprint args in
  Alcotest.(check int) (name ^ " exit") 0 status;
  Alcotest.(check (list string)) name expected lines

let test_free () =
  check_output "shortest" "0.1 1e23" [ "0.1"; "1e23" ];
  check_output "negative and specials" "-- -1.5 inf nan" [ "-1.5"; "inf"; "nan" ];
  (* reading and printing share the mode, so any input echoes in shortest
     form under that mode; the asymmetric paper example (read even, print
     away) needs the library API rather than the CLI *)
  check_output "mode away round-trips" "--mode away 1e23" [ "1e23" ];
  check_output "mode zero round-trips" "--mode zero 0.3" [ "0.3" ]

let test_fixed () =
  check_output "relative digits binary32" "--digits 10 --format binary32 0.333333333"
    [ "0.33333334##" ];
  check_output "places with hash" "--places 20 100"
    [ "100.000000000000000#####" ];
  check_output "pi to 4 places" "--places 4 3.14159265358979" [ "3.1416" ]

let test_bases_and_hex () =
  check_output "base 16" "--base 16 255.9375" [ "ff.f" ];
  check_output "base 2" "--base 2 0.625" [ "0.101" ];
  check_output "hex input" "0x1.8p+1" [ "3.0" ];
  check_output "hex output" "--hex 0.1" [ "0x1.999999999999ap-4" ]

let test_errors () =
  let status, _ = bdprint "not-a-number" in
  Alcotest.(check bool) "bad input fails" true (status <> 0);
  let status, _ = bdprint "--digits 0 1.0" in
  Alcotest.(check bool) "digits 0 fails cleanly" true (status <> 0);
  let status, _ = bdprint "--digits 3 --places 2 1.0" in
  Alcotest.(check bool) "conflicting flags fail" true (status <> 0)

(* Full-pipe variant: feed stdin, capture stdout and stderr separately,
   optionally with an environment prefix (for BDPRINT_FAULTS). *)
let bdprint_full ?(env = "") ?(stdin = "") args =
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/bdprint.exe"
  in
  let tmp_in = Filename.temp_file "bdprint" ".in" in
  let tmp_out = Filename.temp_file "bdprint" ".out" in
  let tmp_err = Filename.temp_file "bdprint" ".err" in
  let oc = open_out tmp_in in
  output_string oc stdin;
  close_out oc;
  let cmd =
    Printf.sprintf "%s %s %s < %s > %s 2> %s" env exe args tmp_in tmp_out
      tmp_err
  in
  let status = Sys.command cmd in
  let slurp path =
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  in
  let out = slurp tmp_out and err = slurp tmp_err in
  Sys.remove tmp_in;
  Sys.remove tmp_out;
  Sys.remove tmp_err;
  (status, out, err)

let contains line needle =
  let n = String.length needle and l = String.length line in
  let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
  go 0

let test_stdin_stream () =
  (* clean stream: converts every line, skips blanks, exits 0 *)
  let status, out, err =
    bdprint_full ~stdin:"0.1\n1e23\n\n2.5e-1\n" "--stdin"
  in
  Alcotest.(check int) "clean stream exit" 0 status;
  Alcotest.(check (list string)) "clean stream output"
    [ "0.1"; "1e23"; "0.25" ] out;
  Alcotest.(check (list string)) "clean stream stderr" [] err;
  (* bad lines are reported with their line number and the stream
     continues *)
  let status, out, err =
    bdprint_full ~stdin:"0.1\nbogus\n1e999999999\n" "--stdin"
  in
  Alcotest.(check bool) "dirty stream exits nonzero" true (status <> 0);
  Alcotest.(check (list string)) "dirty stream still converts the rest"
    [ "0.1"; "inf" ] out;
  Alcotest.(check bool) "stderr names the line" true
    (List.exists (fun l -> contains l "line 2" && contains l "syntax") err);
  (* per-number fixed format works through the stream too *)
  let status, out, _ =
    bdprint_full ~stdin:"3.14159265358979\n100\n" "--stdin --places 4"
  in
  Alcotest.(check int) "fixed stream exit" 0 status;
  Alcotest.(check (list string)) "fixed stream output"
    [ "3.1416"; "100.0000" ] out

let test_stdin_max_errors () =
  let status, out, err =
    bdprint_full ~stdin:"x\ny\n0.1\n" "--stdin --max-errors 2"
  in
  Alcotest.(check bool) "aborts nonzero" true (status <> 0);
  Alcotest.(check (list string)) "stops before the good line" [] out;
  Alcotest.(check bool) "stderr mentions the abort" true
    (List.exists (fun l -> contains l "max-errors") err);
  (* without the cap the same stream drains fully *)
  let status, out, _ = bdprint_full ~stdin:"x\ny\n0.1\n" "--stdin" in
  Alcotest.(check bool) "uncapped still nonzero" true (status <> 0);
  Alcotest.(check (list string)) "uncapped drains" [ "0.1" ] out;
  (* --stdin and positional arguments are mutually exclusive *)
  let status, _, _ = bdprint_full ~stdin:"0.1\n" "--stdin 2.5" in
  Alcotest.(check bool) "conflict rejected" true (status <> 0)

let test_budget_misuse () =
  let status, _, err = bdprint_full "--places 1000000 100" in
  Alcotest.(check bool) "huge --places fails" true (status <> 0);
  Alcotest.(check bool) "names the budget" true
    (List.exists (fun l -> contains l "budget" && contains l "--places") err);
  let status, _, err = bdprint_full "--digits 1000000 100" in
  Alcotest.(check bool) "huge --digits fails" true (status <> 0);
  Alcotest.(check bool) "names the budget" true
    (List.exists (fun l -> contains l "budget" && contains l "--digits") err);
  (* extremes that are merely large still work *)
  let status, out, _ = bdprint_full "--places 100 0.5" in
  Alcotest.(check int) "places 100 fine" 0 status;
  Alcotest.(check int) "one output line" 1 (List.length out)

let test_fault_env () =
  let status, _, err =
    bdprint_full ~env:"BDPRINT_FAULTS=nat.divmod" "0.1"
  in
  Alcotest.(check bool) "fault makes it fail" true (status <> 0);
  Alcotest.(check bool) "fault is a structured internal error" true
    (List.exists
       (fun l -> contains l "internal error" && contains l "nat.divmod")
       err);
  Alcotest.(check bool) "no uncaught exception" true
    (not (List.exists (fun l -> contains l "Fatal error") err));
  (* armed fault + stream: every line degrades, none crash *)
  let status, out, err =
    bdprint_full ~env:"BDPRINT_FAULTS=scaling.scale" ~stdin:"0.1\n0.2\n"
      "--stdin"
  in
  Alcotest.(check bool) "stream under fault fails" true (status <> 0);
  Alcotest.(check (list string)) "no output under fault" [] out;
  Alcotest.(check int) "two per-line errors plus summary" 2
    (List.length
       (List.filter (fun l -> contains l "injected fault") err))

let () =
  Alcotest.run "cli"
    [
      ( "bdprint",
        [
          Alcotest.test_case "free format" `Quick test_free;
          Alcotest.test_case "fixed format" `Quick test_fixed;
          Alcotest.test_case "bases and hex" `Quick test_bases_and_hex;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "stdin streaming" `Quick test_stdin_stream;
          Alcotest.test_case "stdin max-errors" `Quick test_stdin_max_errors;
          Alcotest.test_case "budget misuse" `Quick test_budget_misuse;
          Alcotest.test_case "fault injection env" `Quick test_fault_env;
        ] );
    ]
