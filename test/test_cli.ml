(* End-to-end tests of the bdprint command-line tool: run the built
   executable and check its stdout. *)

let bdprint args =
  (* this test binary lives in _build/default/test; the CLI next door *)
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/bdprint.exe"
  in
  let tmp = Filename.temp_file "bdprint" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>/dev/null" exe args tmp in
  let status = Sys.command cmd in
  let ic = open_in tmp in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove tmp;
  (status, List.rev !lines)

let check_output name args expected =
  let status, lines = bdprint args in
  Alcotest.(check int) (name ^ " exit") 0 status;
  Alcotest.(check (list string)) name expected lines

let test_free () =
  check_output "shortest" "0.1 1e23" [ "0.1"; "1e23" ];
  check_output "negative and specials" "-- -1.5 inf nan" [ "-1.5"; "inf"; "nan" ];
  (* reading and printing share the mode, so any input echoes in shortest
     form under that mode; the asymmetric paper example (read even, print
     away) needs the library API rather than the CLI *)
  check_output "mode away round-trips" "--mode away 1e23" [ "1e23" ];
  check_output "mode zero round-trips" "--mode zero 0.3" [ "0.3" ]

let test_fixed () =
  check_output "relative digits binary32" "--digits 10 --format binary32 0.333333333"
    [ "0.33333334##" ];
  check_output "places with hash" "--places 20 100"
    [ "100.000000000000000#####" ];
  check_output "pi to 4 places" "--places 4 3.14159265358979" [ "3.1416" ]

let test_bases_and_hex () =
  check_output "base 16" "--base 16 255.9375" [ "ff.f" ];
  check_output "base 2" "--base 2 0.625" [ "0.101" ];
  check_output "hex input" "0x1.8p+1" [ "3.0" ];
  check_output "hex output" "--hex 0.1" [ "0x1.999999999999ap-4" ]

let test_errors () =
  let status, _ = bdprint "not-a-number" in
  Alcotest.(check bool) "bad input fails" true (status <> 0);
  let status, _ = bdprint "--digits 0 1.0" in
  Alcotest.(check bool) "digits 0 fails cleanly" true (status <> 0);
  let status, _ = bdprint "--digits 3 --places 2 1.0" in
  Alcotest.(check bool) "conflicting flags fail" true (status <> 0)

(* Full-pipe variant: feed stdin, capture stdout and stderr separately,
   optionally with an environment prefix (for BDPRINT_FAULTS). *)
let bdprint_full ?(env = "") ?(stdin = "") args =
  let exe =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      "bin/bdprint.exe"
  in
  let tmp_in = Filename.temp_file "bdprint" ".in" in
  let tmp_out = Filename.temp_file "bdprint" ".out" in
  let tmp_err = Filename.temp_file "bdprint" ".err" in
  let oc = open_out tmp_in in
  output_string oc stdin;
  close_out oc;
  let cmd =
    Printf.sprintf "%s %s %s < %s > %s 2> %s" env exe args tmp_in tmp_out
      tmp_err
  in
  let status = Sys.command cmd in
  let slurp path =
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !lines
  in
  let out = slurp tmp_out and err = slurp tmp_err in
  Sys.remove tmp_in;
  Sys.remove tmp_out;
  Sys.remove tmp_err;
  (status, out, err)

let contains line needle =
  let n = String.length needle and l = String.length line in
  let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
  go 0

let test_stdin_stream () =
  (* clean stream: converts every line, skips blanks, exits 0 *)
  let status, out, err =
    bdprint_full ~stdin:"0.1\n1e23\n\n2.5e-1\n" "--stdin"
  in
  Alcotest.(check int) "clean stream exit" 0 status;
  Alcotest.(check (list string)) "clean stream output"
    [ "0.1"; "1e23"; "0.25" ] out;
  Alcotest.(check (list string)) "clean stream stderr" [] err;
  (* bad lines are reported with their line number and the stream
     continues *)
  let status, out, err =
    bdprint_full ~stdin:"0.1\nbogus\n1e999999999\n" "--stdin"
  in
  Alcotest.(check bool) "dirty stream exits nonzero" true (status <> 0);
  Alcotest.(check (list string)) "dirty stream still converts the rest"
    [ "0.1"; "inf" ] out;
  Alcotest.(check bool) "stderr names the line" true
    (List.exists (fun l -> contains l "line 2" && contains l "syntax") err);
  (* per-number fixed format works through the stream too *)
  let status, out, _ =
    bdprint_full ~stdin:"3.14159265358979\n100\n" "--stdin --places 4"
  in
  Alcotest.(check int) "fixed stream exit" 0 status;
  Alcotest.(check (list string)) "fixed stream output"
    [ "3.1416"; "100.0000" ] out

let test_stdin_max_errors () =
  let status, out, err =
    bdprint_full ~stdin:"x\ny\n0.1\n" "--stdin --max-errors 2"
  in
  Alcotest.(check bool) "aborts nonzero" true (status <> 0);
  Alcotest.(check (list string)) "stops before the good line" [] out;
  Alcotest.(check bool) "stderr mentions the abort" true
    (List.exists (fun l -> contains l "max-errors") err);
  (* without the cap the same stream drains fully *)
  let status, out, _ = bdprint_full ~stdin:"x\ny\n0.1\n" "--stdin" in
  Alcotest.(check bool) "uncapped still nonzero" true (status <> 0);
  Alcotest.(check (list string)) "uncapped drains" [ "0.1" ] out;
  (* --stdin and positional arguments are mutually exclusive *)
  let status, _, _ = bdprint_full ~stdin:"0.1\n" "--stdin 2.5" in
  Alcotest.(check bool) "conflict rejected" true (status <> 0)

let test_budget_misuse () =
  let status, _, err = bdprint_full "--places 1000000 100" in
  Alcotest.(check bool) "huge --places fails" true (status <> 0);
  Alcotest.(check bool) "names the budget" true
    (List.exists (fun l -> contains l "budget" && contains l "--places") err);
  let status, _, err = bdprint_full "--digits 1000000 100" in
  Alcotest.(check bool) "huge --digits fails" true (status <> 0);
  Alcotest.(check bool) "names the budget" true
    (List.exists (fun l -> contains l "budget" && contains l "--digits") err);
  (* extremes that are merely large still work *)
  let status, out, _ = bdprint_full "--places 100 0.5" in
  Alcotest.(check int) "places 100 fine" 0 status;
  Alcotest.(check int) "one output line" 1 (List.length out)

let test_fault_env () =
  let status, _, err =
    bdprint_full ~env:"BDPRINT_FAULTS=nat.divmod" "0.1"
  in
  Alcotest.(check bool) "fault makes it fail" true (status <> 0);
  Alcotest.(check bool) "fault is a structured internal error" true
    (List.exists
       (fun l -> contains l "internal error" && contains l "nat.divmod")
       err);
  Alcotest.(check bool) "no uncaught exception" true
    (not (List.exists (fun l -> contains l "Fatal error") err));
  (* armed fault + stream: every line degrades, none crash *)
  let status, out, err =
    bdprint_full ~env:"BDPRINT_FAULTS=scaling.scale" ~stdin:"0.1\n0.2\n"
      "--stdin"
  in
  Alcotest.(check bool) "stream under fault fails" true (status <> 0);
  Alcotest.(check (list string)) "no output under fault" [] out;
  Alcotest.(check int) "two per-line errors plus summary" 2
    (List.length
       (List.filter (fun l -> contains l "injected fault") err))

let test_exit_codes () =
  (* each failure class has its own exit code; the stream reports the
     most severe class seen: internal(4) > budget(3) > syntax/range(2) *)
  let status, _, _ = bdprint_full ~stdin:"bogus\n" "--stdin" in
  Alcotest.(check int) "syntax exits 2" 2 status;
  let long_line = String.make 70_000 '1' in
  let status, _, err = bdprint_full ~stdin:(long_line ^ "\n") "--stdin" in
  Alcotest.(check int) "budget exits 3" 3 status;
  Alcotest.(check bool) "budget named on stderr" true
    (List.exists (fun l -> contains l "budget") err);
  let status, _, _ =
    bdprint_full ~stdin:("bogus\n" ^ long_line ^ "\n0.1\n") "--stdin"
  in
  Alcotest.(check int) "mixed stream reports most severe (3)" 3 status;
  let status, _, _ =
    bdprint_full ~env:"BDPRINT_FAULTS=nat.divmod" ~stdin:"0.1\n" "--stdin"
  in
  Alcotest.(check int) "internal exits 4" 4 status;
  let status, _, _ =
    bdprint_full ~env:"BDPRINT_FAULTS=nat.divmod" ~stdin:"bogus\n0.1\n"
      "--stdin"
  in
  Alcotest.(check int) "internal beats syntax" 4 status

let test_deadline_flag () =
  let status, out, err =
    bdprint_full ~stdin:"0.1\n" "--stdin --deadline-ms 0"
  in
  Alcotest.(check int) "expired deadline exits 3 (budget class)" 3 status;
  Alcotest.(check (list string)) "no output" [] out;
  Alcotest.(check bool) "stderr names the deadline" true
    (List.exists (fun l -> contains l "deadline") err);
  (* a sane deadline changes nothing on a fast input *)
  let status, out, _ =
    bdprint_full ~stdin:"0.1\n" "--stdin --deadline-ms 5000"
  in
  Alcotest.(check int) "generous deadline exit" 0 status;
  Alcotest.(check (list string)) "generous deadline output" [ "0.1" ] out;
  (* same through the parallel service *)
  let status, out, _ =
    bdprint_full ~stdin:"0.1\n1e23\n" "--stdin --jobs 2 --deadline-ms 5000"
  in
  Alcotest.(check int) "parallel deadline exit" 0 status;
  Alcotest.(check (list string)) "parallel deadline output"
    [ "0.1"; "1e23" ] out

let test_unknown_fault_point () =
  (* unknown names in BDPRINT_FAULTS warn once per distinct name on
     stderr and are ignored; the conversion itself is untouched *)
  let status, out, err =
    bdprint_full
      ~env:"BDPRINT_FAULTS=no.such.point,no.such.point,no.such.point"
      ~stdin:"0.1\n" "--stdin"
  in
  Alcotest.(check int) "unknown point is not fatal" 0 status;
  Alcotest.(check (list string)) "output unaffected" [ "0.1" ] out;
  let unknown_warnings =
    List.filter
      (fun l ->
        contains l "unknown or malformed fault entry"
        && contains l "no.such.point")
      err
  in
  Alcotest.(check int) "warned exactly once per distinct name" 1
    (List.length unknown_warnings);
  (* valid entries alongside an unknown one still arm *)
  let status, _, err =
    bdprint_full ~env:"BDPRINT_FAULTS=no.such.point,nat.divmod" ~stdin:"0.1\n"
      "--stdin"
  in
  Alcotest.(check int) "valid entry still arms" 4 status;
  Alcotest.(check bool) "both warning and fault" true
    (List.exists (fun l -> contains l "unknown or malformed fault entry") err
    && List.exists (fun l -> contains l "injected fault") err)

let test_jobs_parallel () =
  let inputs = List.init 50 (fun i -> string_of_int (i + 1)) in
  let stdin = String.concat "\n" inputs ^ "\n" in
  let status_seq, out_seq, _ = bdprint_full ~stdin "--stdin" in
  let status_par, out_par, _ = bdprint_full ~stdin "--stdin --jobs 4" in
  Alcotest.(check int) "sequential exit" 0 status_seq;
  Alcotest.(check int) "parallel exit" 0 status_par;
  Alcotest.(check (list string)) "parallel output matches sequential"
    out_seq out_par;
  Alcotest.(check (list string)) "order preserved"
    (List.map (fun s -> s ^ ".0") inputs)
    out_par;
  (* dirty stream: same per-line errors, same exit code as sequential *)
  let dirty = "0.1\nbogus\n1e23\n" in
  let status_seq, out_seq, _ = bdprint_full ~stdin:dirty "--stdin" in
  let status_par, out_par, err_par =
    bdprint_full ~stdin:dirty "--stdin --jobs 3"
  in
  Alcotest.(check int) "dirty exits match" status_seq status_par;
  Alcotest.(check (list string)) "dirty outputs match" out_seq out_par;
  Alcotest.(check bool) "parallel stderr names the line" true
    (List.exists (fun l -> contains l "line 2" && contains l "syntax") err_par);
  (* --jobs requires --stdin *)
  let status, _, err = bdprint_full "--jobs 2 0.1" in
  Alcotest.(check bool) "--jobs without --stdin rejected" true (status <> 0);
  Alcotest.(check bool) "rejection names --stdin" true
    (List.exists (fun l -> contains l "stdin") err);
  let status, _, _ = bdprint_full ~stdin:"0.1\n" "--stdin --jobs 0" in
  Alcotest.(check bool) "--jobs 0 rejected" true (status <> 0)

let test_stats_flag () =
  let status, out, err =
    bdprint_full ~stdin:"0.1\n1e23\n" "--stdin --jobs 2 --stats"
  in
  Alcotest.(check int) "stats exit" 0 status;
  Alcotest.(check (list string)) "stats leaves stdout alone"
    [ "0.1"; "1e23" ] out;
  Alcotest.(check bool) "stats on stderr" true
    (List.exists
       (fun l -> contains l "submitted=2" && contains l "ok=2")
       err);
  Alcotest.(check bool) "breaker state reported" true
    (List.exists (fun l -> contains l "breaker=closed") err);
  (* sequential --stats works too *)
  let status, _, err = bdprint_full ~stdin:"0.1\n" "--stdin --stats" in
  Alcotest.(check int) "sequential stats exit" 0 status;
  Alcotest.(check bool) "sequential stats on stderr" true
    (List.exists (fun l -> contains l "jobs=1") err);
  let status, _, _ = bdprint_full "--stats 0.1" in
  Alcotest.(check bool) "--stats without --stdin rejected" true (status <> 0)

(* Interrupted streams: SIGINT mid-stream and a downstream consumer
   closing the pipe (SIGPIPE) must both flush --metrics and exit with
   the distinct code 5 instead of dying on the default signal action. *)

let cli_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/bdprint.exe"

let run_script body =
  let tmp = Filename.temp_file "bdprint_script" ".sh" in
  let oc = open_out tmp in
  output_string oc body;
  close_out oc;
  let status = Sys.command (Printf.sprintf "sh %s" (Filename.quote tmp)) in
  Sys.remove tmp;
  status

let test_sigint_stream () =
  let script =
    Printf.sprintf
      {|
set -e
exe=%s
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
mkfifo "$dir/in"
"$exe" --stdin --metrics "$dir/m.json" < "$dir/in" > "$dir/out" 2> "$dir/err" &
pid=$!
exec 3> "$dir/in"
printf '0.1\n0.2\n' >&3
sleep 0.4
kill -INT $pid
sleep 0.3
exec 3>&-
set +e
wait $pid
code=$?
[ -s "$dir/m.json" ] || exit 90
[ -s "$dir/m.prom" ] || exit 92
grep -q interrupted "$dir/err" || exit 91
grep -q '^0.1$' "$dir/out" || exit 93
exit $code
|}
      (Filename.quote (cli_exe ()))
  in
  Alcotest.(check int) "SIGINT flushes metrics and exits 5" 5
    (run_script script)

let test_sigpipe_stream () =
  let one driver_args =
    Printf.sprintf
      {|
set -e
exe=%s
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
mkfifo "$dir/fifo"
head -2 < "$dir/fifo" > /dev/null &
reader=$!
set +e
yes 0.1 | "$exe" --stdin %s --metrics "$dir/m.json" > "$dir/fifo" 2> "$dir/err"
code=$?
wait $reader
[ -s "$dir/m.json" ] || exit 90
grep -q interrupted "$dir/err" || exit 91
exit $code
|}
      (Filename.quote (cli_exe ()))
      driver_args
  in
  Alcotest.(check int) "closed pipe exits 5 (sequential)" 5
    (run_script (one ""));
  Alcotest.(check int) "closed pipe exits 5 (--jobs)" 5
    (run_script (one "--jobs 2"))

let () =
  Alcotest.run "cli"
    [
      ( "bdprint",
        [
          Alcotest.test_case "free format" `Quick test_free;
          Alcotest.test_case "fixed format" `Quick test_fixed;
          Alcotest.test_case "bases and hex" `Quick test_bases_and_hex;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "stdin streaming" `Quick test_stdin_stream;
          Alcotest.test_case "stdin max-errors" `Quick test_stdin_max_errors;
          Alcotest.test_case "budget misuse" `Quick test_budget_misuse;
          Alcotest.test_case "fault injection env" `Quick test_fault_env;
          Alcotest.test_case "exit codes per class" `Quick test_exit_codes;
          Alcotest.test_case "deadline flag" `Quick test_deadline_flag;
          Alcotest.test_case "unknown fault point" `Quick
            test_unknown_fault_point;
          Alcotest.test_case "jobs parallel streaming" `Quick
            test_jobs_parallel;
          Alcotest.test_case "stats flag" `Quick test_stats_flag;
          Alcotest.test_case "SIGINT interrupts stream" `Quick
            test_sigint_stream;
          Alcotest.test_case "SIGPIPE interrupts stream" `Quick
            test_sigpipe_stream;
        ] );
    ]
