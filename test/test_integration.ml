(* Cross-module integration tests: rendering, the float-level API, wide
   and custom formats (binary80/binary128), and full print-read-print
   pipelines through our own reader. *)

module Nat = Bignum.Nat
module Ratio = Bignum.Ratio
open Fp
open Dragon

let qtest ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let b64 = Format_spec.binary64

(* ------------------------------------------------------------------ *)
(* Rendering *)

let test_render_free () =
  let render ?notation digits k =
    Render.free ?notation ~base:10 { Free_format.digits = Array.of_list digits; k }
  in
  Alcotest.(check string) "1.5" "1.5" (render [ 1; 5 ] 1);
  Alcotest.(check string) "0.15" "0.15" (render [ 1; 5 ] 0);
  Alcotest.(check string) "0.00015" "0.00015" (render [ 1; 5 ] (-3));
  Alcotest.(check string) "150.0" "150.0" (render [ 1; 5 ] 3);
  Alcotest.(check string) "scientific low" "1.5e-7" (render [ 1; 5 ] (-6));
  Alcotest.(check string) "positional edge low" "0.0000015"
    (render [ 1; 5 ] (-5));
  Alcotest.(check string) "scientific high" "1.5e22" (render [ 1; 5 ] 23);
  Alcotest.(check string) "single digit sci" "1e23" (render [ 1 ] 24);
  Alcotest.(check string) "forced scientific" "1.5e0"
    (render ~notation:Render.Scientific [ 1; 5 ] 1);
  Alcotest.(check string) "forced positional" "150000000000000000000000.0"
    (render ~notation:Render.Positional [ 1; 5 ] 24);
  Alcotest.(check string) "negative" "-2.5"
    (Render.free ~neg:true ~base:10 { Free_format.digits = [| 2; 5 |]; k = 1 });
  Alcotest.(check string) "base 36 letters" "z.z"
    (Render.free ~base:36 { Free_format.digits = [| 35; 35 |]; k = 1 });
  Alcotest.(check string) "specials" "0" (Render.zero ());
  Alcotest.(check string) "neg zero" "-0" (Render.zero ~neg:true ());
  Alcotest.(check string) "inf" "inf" (Render.infinity ());
  Alcotest.(check string) "nan" "nan" Render.nan

let test_render_fixed () =
  let mk digits k = { Fixed_format.digits = Array.of_list digits; k } in
  let d n = Fixed_format.Digit n and h = Fixed_format.Hash in
  Alcotest.(check string) "hash tail" "1.23##"
    (Render.fixed ~base:10 (mk [ d 1; d 2; d 3; h; h ] 1));
  Alcotest.(check string) "hash in integer part" "123#.#"
    (Render.fixed ~base:10 (mk [ d 1; d 2; d 3; h; h ] 4));
  Alcotest.(check string) "scientific with hash" "1.23##e5"
    (Render.fixed ~notation:Render.Scientific ~base:10
       (mk [ d 1; d 2; d 3; h; h ] 6))

(* ------------------------------------------------------------------ *)
(* Float-level API *)

let test_print_exact () =
  Alcotest.(check string) "0.5 exact" "0.5" (Printer.print_exact 0.5);
  Alcotest.(check string) "3 exact" "3.0" (Printer.print_exact 3.);
  Alcotest.(check string) "0.1 exact (55 digits)"
    "0.1000000000000000055511151231257827021181583404541015625"
    (Printer.print_exact 0.1);
  Alcotest.(check string) "-0.25 exact" "-0.25" (Printer.print_exact (-0.25));
  Alcotest.(check bool) "min denormal has 751 digits" true
    (let s = Printer.print_exact ~notation:Render.Scientific 5e-324 in
     (* d.<750 digits>e-324 *)
     String.length s = 752 + String.length "e-324");
  Alcotest.(check string) "exact in base 2 is the mantissa"
    "0.101"
    (Printer.print_exact ~base:2 0.625);
  Alcotest.(check string) "specials" "inf" (Printer.print_exact Float.infinity)

let test_decimal_format () =
  (* base-10 format: reading a <=16-digit decimal is exact, and the
     shortest output is just the significand with zeros stripped *)
  let fmt = Format_spec.decimal64_like in
  (match Reader.read fmt "123.4500" with
  | Ok (Value.Finite v) ->
    Alcotest.(check string) "prints back minimally" "123.45"
      (Render.free ~base:10 (Free_format.convert fmt v))
  | _ -> Alcotest.fail "read failed");
  (match Reader.read fmt "1e-398" with
  | Ok (Value.Finite v) ->
    Alcotest.(check bool) "denormal decimal round-trips" true
      (Value.equal
         (Reader.read_ratio fmt (Free_format.to_ratio ~base:10 (Free_format.convert fmt v)))
         (Value.Finite v))
  | _ -> Alcotest.fail "read failed");
  (* 17 significant input digits must round to the 16 the format holds *)
  match Reader.read fmt "12345678901234567" with
  | Ok (Value.Finite v) ->
    Alcotest.(check int) "16 digits stored" 16
      (Array.length (Nat.to_base_digits ~base:10 v.Value.f));
    Alcotest.(check string) "rounded to p = 16" "1.234567890123457e16"
      (Render.free ~notation:Render.Scientific ~base:10
         (Free_format.convert fmt v))
  | _ -> Alcotest.fail "read failed"

let test_printer_api () =
  Alcotest.(check string) "shortest" "0.1" (Printer.shortest 0.1);
  Alcotest.(check string) "nan" "nan" (Printer.print Float.nan);
  Alcotest.(check string) "-inf" "-inf" (Printer.print Float.neg_infinity);
  Alcotest.(check string) "-0" "-0" (Printer.print (-0.));
  Alcotest.(check string) "fixed of zero" "0"
    (Printer.print_fixed (Fixed_format.Relative 5) 0.);
  Alcotest.(check string) "print_value binary32"
    "0.33333334"
    (match Reader.read Format_spec.binary32 "0.3333333333" with
    | Ok v -> Printer.print_value_exn Format_spec.binary32 v
    | Error e -> Alcotest.fail (Robust.Error.to_string e))

(* ------------------------------------------------------------------ *)
(* Wide and custom formats *)

let arb_finite_in (fmt : Format_spec.t) =
  let gen =
    QCheck.Gen.(
      let* denormal = QCheck.Gen.frequency [ (9, return false); (1, return true) ] in
      let* e = int_range fmt.emin fmt.emax in
      let* bits = list_size (return ((fmt.p / 60) + 1)) (int_bound max_int) in
      let f =
        List.fold_left
          (fun acc b -> Nat.add (Nat.shift_left acc 60) (Nat.of_int b))
          Nat.one bits
      in
      (* force exactly p digits (normalized) or a small denormal mantissa *)
      let f =
        if denormal then
          Nat.add Nat.one
            (snd (Nat.divmod f (Format_spec.min_normal_mantissa fmt)))
        else
          Nat.add (Format_spec.min_normal_mantissa fmt)
            (snd (Nat.divmod f (Format_spec.min_normal_mantissa fmt)))
      in
      let e = if Nat.compare f (Format_spec.min_normal_mantissa fmt) < 0 then fmt.emin else e in
      return { Value.neg = false; f; e })
  in
  QCheck.make ~print:(fun v -> Value.to_string (Value.Finite v)) gen

let wide_format_props ?(count = 15) fmt name =
  [
    qtest ~count
      (name ^ ": integer path = rational reference")
      (arb_finite_in fmt)
      (fun v ->
        Free_format.equal (Free_format.convert fmt v) (Reference.free fmt v));
    qtest ~count
      (name ^ ": output conditions hold")
      (arb_finite_in fmt)
      (fun v ->
        match Reference.check_output fmt v (Free_format.convert fmt v) with
        | Ok () -> true
        | Error e -> QCheck.Test.fail_reportf "%s: %s" (Value.to_string (Value.Finite v)) e);
    qtest ~count
      (name ^ ": round-trips through the reader")
      (arb_finite_in fmt)
      (fun v ->
        let r = Free_format.convert fmt v in
        Value.equal
          (Reader.read_ratio fmt (Free_format.to_ratio ~base:10 r))
          (Value.Finite v));
    qtest ~count
      (name ^ ": all strategies agree")
      (arb_finite_in fmt)
      (fun v ->
        let results =
          List.map (fun strategy -> Free_format.convert ~strategy fmt v) Scaling.all
        in
        match results with
        | first :: rest -> List.for_all (Free_format.equal first) rest
        | [] -> false);
  ]

let test_binary128_shortest_bound () =
  (* 2^-16494, the smallest binary128 denormal, still prints briefly *)
  let v = { Value.neg = false; f = Nat.one; e = -16494 } in
  let r = Free_format.convert Format_spec.binary128 v in
  Alcotest.(check bool) "short denormal output" true
    (Array.length r.Free_format.digits <= 3);
  (* max finite binary128 round-trips *)
  let vmax =
    { Value.neg = false;
      f = Nat.pred (Format_spec.mantissa_limit Format_spec.binary128);
      e = 16271 }
  in
  let rmax = Free_format.convert Format_spec.binary128 vmax in
  Alcotest.(check bool) "max finite round-trips" true
    (Value.equal
       (Reader.read_ratio Format_spec.binary128
          (Free_format.to_ratio ~base:10 rmax))
       (Value.Finite vmax));
  (* binary128 shortest output never exceeds 36 digits *)
  Alcotest.(check bool) "max finite at most 36 digits" true
    (Array.length rmax.Free_format.digits <= 36)

(* ------------------------------------------------------------------ *)
(* Full pipelines through our own reader *)

let arb_double =
  QCheck.make ~print:(Printf.sprintf "%h")
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Int64.float_of_bits bits in
          if Float.is_nan x || Float.abs x = Float.infinity then 1.5 else x)
        ui64)

let pipeline_props =
  [
    qtest ~count:400 "print |> our reader = identity (binary64, all modes)"
      QCheck.(pair arb_double (QCheck.oneofl Rounding.all))
      (fun (x, mode) ->
        let s = Printer.print ~mode x in
        match Reader.read_float ~mode s with
        | Ok y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
        | Error _ -> false);
    qtest ~count:200 "print in base b |> read back via ratio"
      QCheck.(pair arb_double (QCheck.int_range 2 36))
      (fun (x, base) ->
        QCheck.assume (x <> 0.);
        match Ieee.decompose (Float.abs x) with
        | Value.Finite v ->
          let r = Free_format.convert ~base b64 v in
          Value.equal
            (Reader.read_ratio b64 (Free_format.to_ratio ~base r))
            (Value.Finite v)
        | _ -> true);
    qtest ~count:200 "print is idempotent (print (read (print x)) = print x)"
      arb_double
      (fun x ->
        let s = Printer.print x in
        match Reader.read_float s with
        | Ok y -> String.equal s (Printer.print y)
        | Error _ -> false);
    qtest ~count:200 "fixed 17 digits reads back (binary64)" arb_double
      (fun x ->
        QCheck.assume (x <> 0.);
        let s = Printer.print_fixed (Fixed_format.Relative 17) x in
        (* insignificant positions read as zero *)
        let s = String.map (fun c -> if c = '#' then '0' else c) s in
        match Reader.read_float s with
        | Ok y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
        | Error _ -> QCheck.Test.fail_reportf "unreadable %S" s);
    qtest ~count:100 "host printf %.17g agrees with naive fixed 17 read-back"
      arb_double
      (fun x ->
        QCheck.assume (x <> 0. && Float.is_finite x);
        let ours = Baselines.Naive_fixed.print ~ndigits:17 (Float.abs x) in
        float_of_string ours = Float.abs x);
  ]

let () =
  Alcotest.run "integration"
    [
      ( "render",
        [
          Alcotest.test_case "free" `Quick test_render_free;
          Alcotest.test_case "fixed" `Quick test_render_fixed;
        ] );
      ( "printer-api",
        [
          Alcotest.test_case "floats" `Quick test_printer_api;
          Alcotest.test_case "print_exact" `Quick test_print_exact;
          Alcotest.test_case "decimal64-like format" `Quick test_decimal_format;
        ] );
      ( "binary128",
        Alcotest.test_case "extremes" `Quick test_binary128_shortest_bound
        :: wide_format_props Format_spec.binary128 "binary128" );
      ("binary80", wide_format_props Format_spec.binary80 "binary80");
      ( "ternary-wide",
        wide_format_props ~count:60
          (Format_spec.make ~name:"ternary-wide" ~b:3 ~p:40 ~emin:(-80)
             ~emax:80 ())
          "ternary p=40" );
      ("pipelines", pipeline_props);
    ]
