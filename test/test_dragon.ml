(* Tests for the core Burger-Dybvig printer: the paper's worked examples,
   equivalence of the integer-arithmetic path with the Section-2 rational
   reference, the three output conditions, scaling-strategy agreement and
   estimator bounds, and fixed-format correctness against the oracle. *)

module Nat = Bignum.Nat
module Ratio = Bignum.Ratio
open Fp
open Dragon

let qtest ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let b64 = Format_spec.binary64

let decompose_pos x =
  match Ieee.decompose x with
  | Value.Finite v when not v.neg -> v
  | _ -> Alcotest.failf "not positive finite: %g" x

let free_result = Alcotest.testable Free_format.pp Free_format.equal
let fixed_result = Alcotest.testable Fixed_format.pp Fixed_format.equal

(* ------------------------------------------------------------------ *)
(* Generators *)

let arb_pos_double =
  QCheck.make ~print:(Printf.sprintf "%h")
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Float.abs (Int64.float_of_bits bits) in
          if Float.is_nan x || x = Float.infinity || x = 0. then 1.5 else x)
        ui64)

(* Uniform over interesting structure: random mantissa and exponent,
   including denormals and binade boundaries. *)
let arb_structured_double =
  QCheck.make ~print:(Printf.sprintf "%h")
    QCheck.Gen.(
      let* shape = int_bound 3 in
      let* e = int_range (-1074) 971 in
      let* m = int_bound ((1 lsl 52) - 1) in
      let f =
        match shape with
        | 0 -> (1 lsl 52) lor m (* normal *)
        | 1 -> 1 lsl 52 (* binade bottom: narrow low gap *)
        | 2 -> (1 lsl 53) - 1 (* binade top *)
        | _ -> max 1 (m land 0xffff) (* small, denormal when e = -1074 *)
      in
      let e = if f < 1 lsl 52 then -1074 else e in
      return (Ieee.compose (Value.finite ~f:(Nat.of_int f) ~e ())))

let arb_mode = QCheck.oneofl Rounding.all
let arb_base = QCheck.int_range 2 36

(* ------------------------------------------------------------------ *)
(* Paper examples *)

let test_paper_examples () =
  Alcotest.(check string) "1/3 free" "0.3333333333333333"
    (Printer.print (1. /. 3.));
  Alcotest.(check string) "0.3 not 0.2999999" "0.3" (Printer.print 0.3);
  Alcotest.(check string) "1e23 under unbiased rounding" "1e23"
    (Printer.print 1e23);
  Alcotest.(check string)
    "1e23 without rounding-mode knowledge needs 17 digits"
    "9.999999999999999e22"
    (Printer.print ~mode:Rounding.To_nearest_away 1e23);
  Alcotest.(check string) "100 to 20 places"
    "100.000000000000000#####"
    (Printer.print_fixed (Fixed_format.Absolute (-20)) 100.);
  (* binary32 third: the paper's intro illustrates with 0.3333333148 /
     0.3333333### ("might print as") — the actual IEEE single nearest 1/3
     is 11184811 * 2^-25 = 0.3333333432674408..., whose shortest form has
     8 digits, so the # marks start one position later than the
     illustration. *)
  let third32 =
    match
      Reader.read Format_spec.binary32 "0.333333333333333333333333333"
    with
    | Ok (Value.Finite v) -> v
    | _ -> Alcotest.fail "binary32 third"
  in
  let fx =
    Fixed_format.convert_exn Format_spec.binary32 third32
      (Fixed_format.Absolute (-10))
  in
  Alcotest.(check string) "1/3 single to 10 places" "0.33333334##"
    (Render.fixed ~base:10 fx);
  let fx17 =
    Fixed_format.convert_exn Format_spec.binary32 third32
      (Fixed_format.Absolute (-17))
  in
  Alcotest.(check bool) "garbage digits become #, not 0.3333333432674408"
    true
    (String.length (Render.fixed ~base:10 fx17) > 9
    && String.contains (Render.fixed ~base:10 fx17) '#')

let test_shortest_gallery () =
  let check x expected =
    Alcotest.(check string) (Printf.sprintf "%h" x) expected (Printer.print x)
  in
  check 0.1 "0.1";
  check 0.2 "0.2";
  check 0.30000000000000004 "0.30000000000000004";
  check 5e-324 "5e-324";
  check Float.max_float "1.7976931348623157e308";
  check Float.min_float "2.2250738585072014e-308";
  check 1.5 "1.5";
  check (-1.5) "-1.5";
  check 100. "100.0";
  check 1e22 "1e22";
  check 123.456 "123.456";
  check 2. "2.0";
  check 0. "0";
  check (-0.) "-0";
  check Float.infinity "inf";
  check Float.nan "nan"

(* ------------------------------------------------------------------ *)
(* Boundaries: Table 1 *)

let test_table1_one () =
  (* v = 1.0 = 2^52 * 2^-52: mantissa at the bottom of its binade, so the
     low gap is narrow. *)
  let bnd = Boundaries.of_finite b64 (decompose_pos 1.0) in
  let low, high = Boundaries.low_high bnd in
  let expect_low = Ratio.sub Ratio.one (Ratio.pow (Ratio.of_int 2) (-54)) in
  let expect_high = Ratio.add Ratio.one (Ratio.pow (Ratio.of_int 2) (-53)) in
  Alcotest.(check bool) "low" true (Ratio.equal low expect_low);
  Alcotest.(check bool) "high" true (Ratio.equal high expect_high);
  Alcotest.(check bool) "value" true
    (Ratio.equal (Boundaries.value bnd) Ratio.one);
  (* 2^52 is even, so both endpoints read back under round-to-even *)
  Alcotest.(check bool) "endpoints ok" true (bnd.low_ok && bnd.high_ok)

let test_table1_matches_gaps =
  qtest "Table 1 range = Gaps midpoints" arb_structured_double (fun x ->
      let v = decompose_pos x in
      let bnd = Boundaries.of_finite b64 v in
      let low, high = Boundaries.low_high bnd in
      let low', high' = Gaps.rounding_range b64 v in
      Ratio.equal low low' && Ratio.equal high high'
      && Ratio.equal (Boundaries.value bnd) (Value.to_ratio b64 v))

let test_directed_boundaries () =
  let v = decompose_pos 1.5 in
  let bnd = Boundaries.of_finite ~mode:Rounding.Toward_zero b64 v in
  let low, high = Boundaries.low_high bnd in
  Alcotest.(check bool) "toward-zero: low = v" true
    (Ratio.equal low (Ratio.of_ints 3 2));
  Alcotest.(check bool) "toward-zero: high = succ v" true
    (Ratio.equal high
       (Value.to_ratio b64 (decompose_pos (Ieee.succ_float 1.5))));
  Alcotest.(check bool) "flags" true (bnd.low_ok && not bnd.high_ok);
  (* ceiling on a negative value keeps the gap above the magnitude *)
  let vneg = { v with Value.neg = true } in
  let bndc = Boundaries.of_finite ~mode:Rounding.Toward_positive b64 vneg in
  let lowc, _ = Boundaries.low_high bndc in
  Alcotest.(check bool) "ceiling of negative = toward-zero of magnitude" true
    (Ratio.equal lowc (Ratio.of_ints 3 2) && bndc.low_ok)

(* ------------------------------------------------------------------ *)
(* Free format: reference equivalence and output conditions *)

let props_free =
  [
    qtest ~count:400 "integer path = rational reference"
      QCheck.(pair arb_structured_double arb_mode)
      (fun (x, mode) ->
        let v = decompose_pos x in
        Free_format.equal
          (Free_format.convert ~mode b64 v)
          (Reference.free ~mode b64 v));
    qtest ~count:150 "reference equivalence in other bases"
      QCheck.(pair arb_pos_double (QCheck.int_range 2 36))
      (fun (x, base) ->
        let v = decompose_pos x in
        Free_format.equal
          (Free_format.convert ~base b64 v)
          (Reference.free ~base b64 v));
    qtest ~count:400 "output conditions hold (Thms 3,4,5)"
      QCheck.(pair arb_structured_double arb_mode)
      (fun (x, mode) ->
        let v = decompose_pos x in
        match
          Reference.check_output ~mode b64 v (Free_format.convert ~mode b64 v)
        with
        | Ok () -> true
        | Error e -> QCheck.Test.fail_reportf "%h/%s: %s" x (Rounding.to_string mode) e);
    qtest ~count:400 "all scaling strategies agree"
      QCheck.(pair arb_structured_double arb_base)
      (fun (x, base) ->
        let v = decompose_pos x in
        let results =
          List.map
            (fun strategy -> Free_format.convert ~base ~strategy b64 v)
            Scaling.all
        in
        match results with
        | first :: rest -> List.for_all (Free_format.equal first) rest
        | [] -> false);
    qtest ~count:400 "estimates within one below k"
      QCheck.(pair arb_structured_double arb_base)
      (fun (x, base) ->
        let v = decompose_pos x in
        let { Free_format.k; _ } = Free_format.convert ~base b64 v in
        List.for_all
          (fun strategy ->
            match
              Scaling.estimate strategy ~base ~b:2 ~f:v.Value.f ~e:v.Value.e
            with
            | None -> true
            | Some est -> est = k || est = k - 1)
          Scaling.all);
    qtest ~count:400 "round-trips through the reader in its mode"
      QCheck.(pair arb_structured_double arb_mode)
      (fun (x, mode) ->
        let v = decompose_pos x in
        let r = Free_format.convert ~mode b64 v in
        let read = Reader.read_ratio ~mode b64 (Free_format.to_ratio ~base:10 r) in
        Value.equal read (Value.Finite v));
    qtest ~count:200 "rendered string round-trips via the host reader"
      arb_structured_double
      (fun x ->
        let s = Printer.print x in
        Int64.equal (Int64.bits_of_float (float_of_string s)) (Int64.bits_of_float x));
    qtest ~count:200 "never longer than 17 digits for binary64"
      arb_structured_double (fun x ->
        Free_format.digit_count b64 (decompose_pos x) <= 17);
    qtest ~count:200 "binary32 needs at most 9 digits" QCheck.int64 (fun bits ->
        match Ieee.decompose_bits Ieee.spec_binary32 bits with
        | Value.Finite v when not v.Value.neg ->
          Free_format.digit_count Format_spec.binary32 v <= 9
        | _ -> true);
    qtest ~count:300 "no trailing zero digits (minimality corollary)"
      QCheck.(pair arb_structured_double arb_mode)
      (fun (x, mode) ->
        let r = Free_format.convert ~mode b64 (decompose_pos x) in
        let n = Array.length r.Free_format.digits in
        n = 1 || r.Free_format.digits.(n - 1) <> 0);
    qtest ~count:300 "never longer than libc's shortest round-tripping %g"
      arb_structured_double
      (fun x ->
        (* the shortest of %.15g/%.16g/%.17g that round-trips is what
           pragmatic C programs use; the paper's algorithm must never be
           longer (and is shorter whenever libc's form has slack) *)
        let ours = Free_format.digit_count b64 (decompose_pos x) in
        let libc_len =
          List.find_map
            (fun p ->
              let s = Printf.sprintf "%.*g" p x in
              if float_of_string s = x then Some p else None)
            [ 15; 16; 17 ]
        in
        match libc_len with Some l -> ours <= l | None -> false);
  ]

(* Appendix A, Lemma 2: after n digits the running output is exactly
   q_n * B^(k-n) below v, where q_n is the loop's scaled remainder.  Run
   the loop by hand over exact rationals and check the invariant at every
   step, together with the scaled-gap invariants (2) and (3) of
   Section 3.1. *)
let test_lemma2_invariants =
  qtest ~count:150 "Lemma 2 / Section 3.1 invariants hold stepwise"
    arb_structured_double
    (fun x ->
      let v = decompose_pos x in
      let bnd = Boundaries.of_finite b64 v in
      let base = 10 in
      let k, state = Scaling.scale Scaling.Fast_estimate ~base ~b:2 ~f:v.Value.f ~e:v.Value.e bnd in
      let value = Value.to_ratio b64 v in
      let low, high = Boundaries.low_high bnd in
      let rb = Ratio.of_int base in
      (* replay the pre-multiplied loop on rationals for 6 steps *)
      let ok = ref true in
      let r = ref state.Boundaries.r
      and m_plus = ref state.Boundaries.m_plus
      and m_minus = ref state.Boundaries.m_minus in
      let s = state.Boundaries.s in
      let prefix = ref Ratio.zero in
      (for n = 1 to 6 do
         let d, rest = Nat.divmod !r s in
         prefix :=
           Ratio.add !prefix
             (Ratio.mul
                (Ratio.of_int (Nat.to_int_exn d))
                (Ratio.pow rb (k - n)));
         let q_term =
           Ratio.mul
             (Bignum.Ratio.make
                (Bignum.Bigint.of_nat rest)
                (Bignum.Bigint.of_nat s))
             (Ratio.pow rb (k - n))
         in
         (* invariant (1): v = prefix + q_n * B^(k-n) *)
         if not (Ratio.equal value (Ratio.add !prefix q_term)) then ok := false;
         (* invariants (2)/(3): scaled gaps track the real half-gaps *)
         let gap m =
           Ratio.mul
             (Bignum.Ratio.make (Bignum.Bigint.of_nat m) (Bignum.Bigint.of_nat s))
             (Ratio.pow rb (k - n))
         in
         if not (Ratio.equal (Ratio.sub high value) (gap !m_plus)) then
           ok := false;
         if not (Ratio.equal (Ratio.sub value low) (gap !m_minus)) then
           ok := false;
         r := Nat.mul_int rest base;
         m_plus := Nat.mul_int !m_plus base;
         m_minus := Nat.mul_int !m_minus base
       done);
      !ok)

(* The fixup absorbs an estimate of k-1 for free; anything further off
   would break the algorithm — this negative test documents why the
   within-one bound of Section 3.2 is essential. *)
let test_estimate_off_by_two_breaks () =
  (* v = 1.5, correct k = 1.  Feed the digit loop a state scaled as if the
     estimate had been k - 2 = -1 and fixup had bumped it once to k - 1 =
     0 (i.e. the whole state multiplied by base, but only one
     pre-multiplication): the first quotient is >= base and the loop's
     digit-validity assertion (Theorem 1) trips.  This is exactly the
     failure the within-one guarantee of Section 3.2 rules out. *)
  let v = decompose_pos 1.5 in
  let bnd = Boundaries.of_finite b64 v in
  let factor = Scaling.power ~base:10 1 in
  let bad =
    {
      bnd with
      Boundaries.r = Nat.mul_int (Nat.mul bnd.Boundaries.r factor) 10;
      m_plus = Nat.mul_int (Nat.mul bnd.Boundaries.m_plus factor) 10;
      m_minus = Nat.mul_int (Nat.mul bnd.Boundaries.m_minus factor) 10;
    }
  in
  let broke =
    try
      let digits = Generate.free ~base:10 ~tie:Generate.Closer_up bad in
      Array.exists (fun d -> d >= 10) digits
    with Assert_failure _ -> true
  in
  Alcotest.(check bool) "digit loop rejects an off-by-two scale" true broke

let scheme_figure_props =
  List.map
    (fun (figure, name) ->
      qtest ~count:300
        (Printf.sprintf "Scheme %s = production printer" name)
        QCheck.(pair arb_structured_double arb_base)
        (fun (x, base) ->
          let v = decompose_pos x in
          Free_format.equal
            (Scheme_figures.flonum_to_digits figure ~base b64 v)
            (Free_format.convert ~base ~mode:Rounding.To_nearest_even
               ~tie:Generate.Closer_up b64 v)))
    [
      (Scheme_figures.Figure1, "Figure 1 (iterative)");
      (Scheme_figures.Figure2, "Figure 2 (float log)");
      (Scheme_figures.Figure3, "Figure 3 (fast estimator)");
    ]

let test_base3_format () =
  (* Table 1 and the generate loop are generic in the input base; check a
     ternary format against the rational reference. *)
  let fmt = Format_spec.make ~name:"ternary" ~b:3 ~p:8 ~emin:(-20) ~emax:20 () in
  let cases = ref [] in
  for f = 2187 (* 3^7 *) to 2250 do
    cases := { Value.neg = false; f = Nat.of_int f; e = -5 } :: !cases
  done;
  cases := { Value.neg = false; f = Nat.of_int 2187; e = -20 } :: !cases;
  cases := { Value.neg = false; f = Nat.of_int 11; e = -20 } :: !cases;
  List.iter
    (fun v ->
      Alcotest.(check free_result)
        (Value.to_string (Value.Finite v))
        (Reference.free fmt v)
        (Free_format.convert fmt v))
    !cases

let test_tie_strategies () =
  (* 2^-1 = 0.5 prints as "5e-1" whatever the tie rule; construct a value
     where d and d+1 are equidistant: v = 35 * 2^-3 = 4.375, printed to the
     shortest under a reader that accepts both endpoints... simpler to
     check determinism and closer-choice on a handful of values. *)
  List.iter
    (fun x ->
      let v = decompose_pos x in
      let up = Free_format.convert ~tie:Generate.Closer_up b64 v in
      let down = Free_format.convert ~tie:Generate.Closer_down b64 v in
      Alcotest.(check bool)
        (Printf.sprintf "tie choices stay in range for %g" x)
        true
        (Reference.check_output b64 v up = Ok ()
        && Reference.check_output b64 v down = Ok ()))
    [ 0.5; 1.25; 2.5; 6.25; 0.09375 ]

(* ------------------------------------------------------------------ *)
(* Fixed format *)

let digits_no_hash (t : Fixed_format.t) =
  Array.for_all (function Fixed_format.Digit _ -> true | _ -> false) t.digits

let test_fixed_known () =
  let fx req x = Printer.print_fixed req x in
  Alcotest.(check string) "pi to 4 places" "3.1416"
    (fx (Fixed_format.Absolute (-4)) 3.14159265358979);
  Alcotest.(check string) "pi to 2 significant" "3.1"
    (fx (Fixed_format.Relative 2) 3.14159265358979);
  Alcotest.(check string) "0.6 at units" "1.0" (fx (Fixed_format.Absolute 0) 0.6);
  Alcotest.(check string) "0.4 at units" "0.0" (fx (Fixed_format.Absolute 0) 0.4);
  Alcotest.(check string) "0.5 ties up at units" "1.0"
    (fx (Fixed_format.Absolute 0) 0.5);
  Alcotest.(check string) "12345 at tens ties up" "12350.0"
    (fx (Fixed_format.Absolute 1) 12345.);
  Alcotest.(check string) "12345 at tens ties to even"
    "12340.0"
    (Render.fixed ~base:10
       (Fixed_format.convert_exn ~tie:Generate.Closer_even b64
          (decompose_pos 12345.) (Fixed_format.Absolute 1)));
  Alcotest.(check string) "9.99 to 2 significant promotes" "10.0"
    (fx (Fixed_format.Relative 2) 9.99);
  Alcotest.(check string) "0.9999 to 1 significant promotes" "1.0"
    (fx (Fixed_format.Relative 1) 0.9999);
  Alcotest.(check string) "1/3 to 10 significant" "0.3333333333"
    (fx (Fixed_format.Relative 10) (1. /. 3.));
  Alcotest.(check string) "negative carries sign" "-3.1416"
    (fx (Fixed_format.Absolute (-4)) (-3.14159265358979))

let test_fixed_zero_case () =
  (* values at or below half a quantum *)
  let v = decompose_pos 0.4 in
  let t = Fixed_format.convert_exn b64 v (Fixed_format.Absolute 0) in
  Alcotest.(check fixed_result) "0.4 at units"
    { Fixed_format.digits = [| Fixed_format.Digit 0 |]; k = 1 }
    t;
  let v5 = decompose_pos 0.5 in
  let tie_up = Fixed_format.convert_exn b64 v5 (Fixed_format.Absolute 0) in
  Alcotest.(check fixed_result) "0.5 ties up"
    { Fixed_format.digits = [| Fixed_format.Digit 1 |]; k = 1 }
    tie_up;
  let tie_down =
    Fixed_format.convert_exn ~tie:Generate.Closer_down b64 v5
      (Fixed_format.Absolute 0)
  in
  Alcotest.(check fixed_result) "0.5 ties down"
    { Fixed_format.digits = [| Fixed_format.Digit 0 |]; k = 1 }
    tie_down;
  let tiny = Fixed_format.convert_exn b64 (decompose_pos 1e-30) (Fixed_format.Absolute 0) in
  Alcotest.(check fixed_result) "1e-30 at units"
    { Fixed_format.digits = [| Fixed_format.Digit 0 |]; k = 1 }
    tiny

(* The quantum at position j dominates the float gap on both sides: the
   paper's "enough precision" case, where output equals the exact
   rounding. *)
let quantum_dominates v j =
  let low, high = Gaps.rounding_range b64 v in
  let value = Value.to_ratio b64 v in
  let qhalf = Ratio.mul Ratio.half (Ratio.pow (Ratio.of_int 10) j) in
  Ratio.compare (Ratio.sub value qhalf) low <= 0
  && Ratio.compare (Ratio.add value qhalf) high >= 0

let props_fixed =
  [
    qtest ~count:400 "integer path = rational reference (fixed)"
      QCheck.(
        quad arb_structured_double arb_mode
          (QCheck.int_range (-30) 30)
          (QCheck.oneofl
             [ Generate.Closer_up; Generate.Closer_down; Generate.Closer_even ]))
      (fun (x, mode, pos, tie) ->
        let v = decompose_pos x in
        let requests =
          [ Fixed_format.Absolute pos; Fixed_format.Relative (1 + abs pos) ]
        in
        List.for_all
          (fun req ->
            Fixed_format.equal
              (Fixed_format.convert_exn ~mode ~tie b64 v req)
              (Reference.fixed ~mode ~tie b64 v req))
          requests);
    qtest ~count:200 "fixed = reference in other bases"
      QCheck.(
        triple arb_pos_double (QCheck.int_range 2 36) (QCheck.int_range (-12) 12))
      (fun (x, base, pos) ->
        let v = decompose_pos x in
        List.for_all
          (fun req ->
            Fixed_format.equal
              (Fixed_format.convert_exn ~base b64 v req)
              (Reference.fixed ~base b64 v req))
          [ Fixed_format.Absolute pos; Fixed_format.Relative (1 + abs pos) ]);
    qtest ~count:300 "full-precision output is the oracle's rounding"
      QCheck.(pair arb_pos_double (QCheck.int_range 1 17))
      (fun (x, nd) ->
        let v = decompose_pos x in
        let t = Fixed_format.convert_exn b64 v (Fixed_format.Relative nd) in
        QCheck.assume (quantum_dominates v (t.Fixed_format.k - nd));
        let digits, k =
          Oracle.Exact_decimal.round_significant ~tie:Oracle.Exact_decimal.Half_up
            ~base:10 ~ndigits:nd (Value.to_ratio b64 v)
        in
        t.Fixed_format.k = k
        && Array.length t.digits = nd
        && digits_no_hash t
        && Array.for_all2
             (fun a b -> a = Fixed_format.Digit b)
             t.digits digits);
    qtest ~count:300 "relative requests yield exactly i positions"
      QCheck.(pair arb_structured_double (QCheck.int_range 1 25))
      (fun (x, nd) ->
        let v = decompose_pos x in
        let t = Fixed_format.convert_exn b64 v (Fixed_format.Relative nd) in
        Array.length t.Fixed_format.digits = nd);
    qtest ~count:300 "absolute requests stop at position j"
      QCheck.(pair arb_pos_double (QCheck.int_range (-25) 25))
      (fun (x, j) ->
        let v = decompose_pos x in
        let t = Fixed_format.convert_exn b64 v (Fixed_format.Absolute j) in
        t.Fixed_format.k - Array.length t.digits = j);
    qtest ~count:300 "output within half quantum when precision suffices"
      QCheck.(pair arb_pos_double (QCheck.int_range (-20) 20))
      (fun (x, j) ->
        let v = decompose_pos x in
        QCheck.assume (quantum_dominates v j);
        let t = Fixed_format.convert_exn b64 v (Fixed_format.Absolute j) in
        let out = Fixed_format.to_ratio ~base:10 t in
        let half_q = Ratio.mul Ratio.half (Ratio.pow (Ratio.of_int 10) j) in
        digits_no_hash t
        && Ratio.compare
             (Ratio.abs (Ratio.sub out (Value.to_ratio b64 v)))
             half_q
           <= 0);
    qtest ~count:400 "hash positions truly insignificant"
      QCheck.(pair arb_structured_double (QCheck.int_range 1 30))
      (fun (x, nd) ->
        let v = decompose_pos x in
        let t = Fixed_format.convert_exn b64 v (Fixed_format.Relative nd) in
        QCheck.assume (not (digits_no_hash t));
        let fill d =
          Ratio.add
            (Fixed_format.to_ratio ~base:10 t)
            (Ratio.mul (Ratio.of_int d)
               (snd
                  (Array.fold_left
                     (fun (pos, acc) dig ->
                       match dig with
                       | Fixed_format.Hash ->
                         ( pos - 1,
                           Ratio.add acc (Ratio.pow (Ratio.of_int 10) (pos - 1)) )
                       | Fixed_format.Digit _ -> (pos - 1, acc))
                     (t.Fixed_format.k, Ratio.zero)
                     t.digits)))
        in
        (* filling every # with 0 and with 9 must both read back as v *)
        Value.equal (Reader.read_ratio b64 (fill 0)) (Value.Finite v)
        && Value.equal (Reader.read_ratio b64 (fill 9)) (Value.Finite v));
    qtest ~count:400 "hashes only as a suffix"
      QCheck.(pair arb_structured_double (QCheck.int_range 1 30))
      (fun (x, nd) ->
        let v = decompose_pos x in
        let t = Fixed_format.convert_exn b64 v (Fixed_format.Relative nd) in
        let seen_hash = ref false in
        Array.for_all
          (fun d ->
            match d with
            | Fixed_format.Hash ->
              seen_hash := true;
              true
            | Fixed_format.Digit _ -> not !seen_hash)
          t.Fixed_format.digits);
    qtest ~count:200 "fixed and free agree when free is shorter"
      arb_pos_double
      (fun x ->
        let v = decompose_pos x in
        let free = Free_format.convert b64 v in
        let n = Array.length free.Free_format.digits in
        let t = Fixed_format.convert_exn b64 v (Fixed_format.Relative n) in
        QCheck.assume (digits_no_hash t);
        (* at the free-format length, fixed must denote a value at most one
           ulp away from the free result (both are within the range) *)
        t.Fixed_format.k = free.Free_format.k
        ||
        let fr = Free_format.to_ratio ~base:10 free in
        let fx = Fixed_format.to_ratio ~base:10 t in
        Ratio.compare (Ratio.abs (Ratio.sub fr fx))
          (Ratio.pow (Ratio.of_int 10) (free.Free_format.k - n))
        <= 0);
  ]

let test_denormal_hashes () =
  (* The smallest denormal has a single significant decimal digit. *)
  let v = decompose_pos (Int64.float_of_bits 1L) in
  let t = Fixed_format.convert_exn b64 v (Fixed_format.Relative 10) in
  Alcotest.(check int) "one significant digit" 1
    (Fixed_format.significant_digits t);
  Alcotest.(check string) "render" "5.#########e-324"
    (Render.fixed ~base:10 ~notation:Render.Scientific t)

let () =
  Alcotest.run "dragon"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "headline examples" `Quick test_paper_examples;
          Alcotest.test_case "shortest gallery" `Quick test_shortest_gallery;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "Table 1 for 1.0" `Quick test_table1_one;
          test_table1_matches_gaps;
          Alcotest.test_case "directed modes" `Quick test_directed_boundaries;
        ] );
      ("free-format", props_free);
      ( "invariants",
        [
          test_lemma2_invariants;
          Alcotest.test_case "off-by-two estimate breaks (negative)" `Quick
            test_estimate_off_by_two_breaks;
        ] );
      ("scheme-figures", scheme_figure_props);
      ( "free-format-units",
        [
          Alcotest.test_case "ternary format" `Quick test_base3_format;
          Alcotest.test_case "tie strategies" `Quick test_tie_strategies;
        ] );
      ( "fixed-format-units",
        [
          Alcotest.test_case "known values" `Quick test_fixed_known;
          Alcotest.test_case "below half quantum" `Quick test_fixed_zero_case;
          Alcotest.test_case "denormal hashes" `Quick test_denormal_hashes;
        ] );
      ("fixed-format", props_fixed);
    ]
