(* Tests for the baseline printers and the workload generators. *)

module Nat = Bignum.Nat
module Ratio = Bignum.Ratio
open Fp

let b64 = Format_spec.binary64

let qtest ?(count = 200) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let decompose_pos x =
  match Ieee.decompose x with
  | Value.Finite v when not v.neg -> v
  | _ -> Alcotest.failf "not positive finite: %g" x

let arb_pos_double =
  QCheck.make ~print:(Printf.sprintf "%h")
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Float.abs (Int64.float_of_bits bits) in
          if Float.is_nan x || x = Float.infinity || x = 0. then 1.5 else x)
        ui64)

(* ------------------------------------------------------------------ *)
(* Steele & White *)

let test_steele_white_1e23 () =
  (* Without rounding-mode awareness the shorter "1e23" is not available:
     both endpoints are treated as excluded. *)
  Alcotest.(check string) "1e23" "9.999999999999999e22"
    (Baselines.Steele_white.print 1e23);
  Alcotest.(check string) "0.3 still short" "0.3"
    (Baselines.Steele_white.print 0.3)

let steele_white_props =
  [
    qtest "output always reads back (any nearest reader)" arb_pos_double
      (fun x ->
        let v = decompose_pos x in
        let r = Baselines.Steele_white.convert b64 v in
        let out = Dragon.Free_format.to_ratio ~base:10 r in
        List.for_all
          (fun mode ->
            Value.equal (Reader.read_ratio ~mode b64 out) (Value.Finite v))
          [
            Rounding.To_nearest_even;
            Rounding.To_nearest_away;
            Rounding.To_nearest_toward_zero;
          ]);
    qtest "never shorter than the mode-aware printer" arb_pos_double (fun x ->
        let v = decompose_pos x in
        Array.length (Baselines.Steele_white.convert b64 v).Dragon.Free_format.digits
        >= Array.length (Dragon.Free_format.convert b64 v).Dragon.Free_format.digits);
    qtest "agrees with the production printer on odd mantissas"
      arb_pos_double (fun x ->
        (* an odd mantissa closes neither endpoint, so the two coincide *)
        let v = decompose_pos x in
        QCheck.assume (not (Nat.is_even v.Value.f));
        Dragon.Free_format.equal
          (Baselines.Steele_white.convert b64 v)
          (Dragon.Free_format.convert b64 v));
  ]

(* ------------------------------------------------------------------ *)
(* Naive fixed *)

let test_naive_fixed_known () =
  let check x nd expected =
    Alcotest.(check string)
      (Printf.sprintf "%g to %d" x nd)
      expected
      (Baselines.Naive_fixed.print ~ndigits:nd x)
  in
  check 1.0 5 "1.0000e0";
  check (1. /. 3.) 10 "3.333333333e-1";
  check 123.456 9 "1.23456000e2";
  check 0.1 20 "1.0000000000000000555e-1";
  check 9.99 2 "1.0e1";
  check 1e23 17 "9.9999999999999992e22"

let naive_fixed_props =
  [
    qtest ~count:300 "matches the exact oracle"
      QCheck.(pair arb_pos_double (QCheck.int_range 1 20))
      (fun (x, nd) ->
        let v = decompose_pos x in
        let digits, k = Baselines.Naive_fixed.convert ~ndigits:nd b64 v in
        let digits', k' =
          Oracle.Exact_decimal.round_significant ~base:10 ~ndigits:nd
            (Value.to_ratio b64 v)
        in
        k = k' && digits = digits');
    qtest "17 digits always read back" arb_pos_double (fun x ->
        let s = Baselines.Naive_fixed.print ~ndigits:17 x in
        float_of_string s = x);
    qtest ~count:300 "digit-loop variant agrees with the oracle variant"
      QCheck.(pair arb_pos_double (QCheck.int_range 1 20))
      (fun (x, nd) ->
        let v = decompose_pos x in
        Baselines.Naive_fixed.convert_digit_loop ~ndigits:nd b64 v
        = Baselines.Naive_fixed.convert ~ndigits:nd b64 v);
  ]

(* ------------------------------------------------------------------ *)
(* Float-arithmetic fixed (inaccurate printf model) *)

let test_float_fixed_basics () =
  let digits, k = Baselines.Float_fixed.convert ~ndigits:5 1.0 in
  Alcotest.(check (array int)) "1.0 digits" [| 1; 0; 0; 0; 0 |] digits;
  Alcotest.(check int) "1.0 k" 1 k;
  Alcotest.(check bool) "1.0 correctly rounded" true
    (Baselines.Float_fixed.correctly_rounded ~ndigits:17 1.0);
  Alcotest.(check bool) "123.25 correctly rounded at 6" true
    (Baselines.Float_fixed.correctly_rounded ~ndigits:6 123.25)

let test_float_fixed_is_inaccurate () =
  (* The whole point of this baseline: on a stressing corpus it gets a
     measurable number of values wrong at 17 digits. *)
  let corpus = Workloads.Schryer.corpus ~size:20_000 () in
  let wrong =
    Array.fold_left
      (fun acc x ->
        if Baselines.Float_fixed.correctly_rounded ~ndigits:17 x then acc
        else acc + 1)
      0 corpus
  in
  Alcotest.(check bool)
    (Printf.sprintf "some incorrect at 17 digits (%d/20000)" wrong)
    true (wrong > 0);
  Alcotest.(check bool)
    (Printf.sprintf "but mostly correct (%d/20000)" wrong)
    true
    (wrong < 10_000)

let float_fixed_props =
  [
    qtest "digit arrays well formed"
      QCheck.(pair arb_pos_double (QCheck.int_range 1 17))
      (fun (x, nd) ->
        let digits, _ = Baselines.Float_fixed.convert ~ndigits:nd x in
        Array.length digits = nd
        && Array.for_all (fun d -> 0 <= d && d <= 9) digits
        && digits.(0) > 0);
    qtest "close to the exact value (within a few ulps of position n)"
      QCheck.(pair arb_pos_double (QCheck.int_range 1 15))
      (fun (x, nd) ->
        let digits, k = Baselines.Float_fixed.convert ~ndigits:nd x in
        let v = Value.to_ratio b64 (decompose_pos x) in
        let out =
          Ratio.mul
            (Ratio.of_bigint
               (Bignum.Bigint.of_nat (Nat.of_base_digits ~base:10 digits)))
            (Ratio.pow (Ratio.of_int 10) (k - nd))
        in
        (* float normalisation drifts, but stays within ~4 units of the
           last printed place on sane inputs *)
        Ratio.compare
          (Ratio.abs (Ratio.sub out v))
          (Ratio.mul (Ratio.of_int 4) (Ratio.pow (Ratio.of_int 10) (k - nd)))
        <= 0);
  ]

(* ------------------------------------------------------------------ *)
(* Workloads *)

let test_schryer_corpus () =
  let c = Workloads.Schryer.corpus ~size:50_000 () in
  Alcotest.(check int) "size" 50_000 (Array.length c);
  Alcotest.(check bool) "all positive normal finite" true
    (Array.for_all
       (fun x ->
         Float.is_finite x && x >= 2.2250738585072014e-308)
       c);
  let c2 = Workloads.Schryer.corpus ~size:50_000 () in
  Alcotest.(check bool) "deterministic" true (c = c2);
  Alcotest.(check int) "default size is the paper's" 250_680
    Workloads.Schryer.default_size;
  (* patterns all have the hidden bit and fit 53 bits *)
  Alcotest.(check bool) "patterns well-formed" true
    (Array.for_all
       (fun f -> f >= 1 lsl 52 && f < 1 lsl 53)
       (Workloads.Schryer.patterns ()))

let test_random_corpora () =
  let a = Workloads.Corpus.random_positive_normals ~seed:42 1000 in
  let b = Workloads.Corpus.random_positive_normals ~seed:42 1000 in
  Alcotest.(check bool) "reproducible" true (a = b);
  Alcotest.(check bool) "normals" true
    (Array.for_all (fun x -> x >= 2.2250738585072014e-308 && Float.is_finite x) a);
  let d = Workloads.Corpus.random_denormals ~seed:7 500 in
  Alcotest.(check bool) "denormals" true
    (Array.for_all (fun x -> x > 0. && x < 2.2250738585072014e-308) d);
  let f = Workloads.Corpus.random_finite ~seed:1 1000 in
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite f)

let test_torture_inputs () =
  let inputs = Workloads.Corpus.torture_reader_inputs ~seed:5 3000 in
  Alcotest.(check int) "count" 3000 (Array.length inputs);
  (* exact ties and one-off-tie inputs: both readers must agree with each
     other and with the host everywhere *)
  let fallbacks_before = (Reader.Fast.stats ()).Reader.Fast.fallback in
  Array.iter
    (fun s ->
      let exact =
        match Reader.read_float s with Ok x -> x | Error e -> Alcotest.fail (Robust.Error.to_string e)
      in
      let fast =
        match Reader.Fast.read s with Ok x -> x | Error e -> Alcotest.fail (Robust.Error.to_string e)
      in
      Alcotest.(check bool)
        (Printf.sprintf "fast = exact on %s" s)
        true
        (Int64.equal (Int64.bits_of_float fast) (Int64.bits_of_float exact));
      Alcotest.(check bool)
        (Printf.sprintf "libc agrees on %s" s)
        true
        (Float.equal exact (float_of_string s)))
    inputs;
  let fallbacks = (Reader.Fast.stats ()).Reader.Fast.fallback - fallbacks_before in
  (* by construction these sit at or next to rounding boundaries, so the
     certified tier must bail out frequently *)
  Alcotest.(check bool)
    (Printf.sprintf "torture inputs force fallbacks (%d/3000)" fallbacks)
    true (fallbacks > 500)

let test_hard_cases_round_trip () =
  Array.iter
    (fun x ->
      let s = Dragon.Printer.print x in
      Alcotest.(check bool)
        (Printf.sprintf "%h -> %s" x s)
        true
        (float_of_string s = x))
    Workloads.Corpus.hard_cases

let () =
  Alcotest.run "baselines"
    [
      ( "steele-white",
        Alcotest.test_case "1e23 needs 17 digits" `Quick test_steele_white_1e23
        :: steele_white_props );
      ( "naive-fixed",
        Alcotest.test_case "known values" `Quick test_naive_fixed_known
        :: naive_fixed_props );
      ( "float-fixed",
        Alcotest.test_case "basics" `Quick test_float_fixed_basics
        :: Alcotest.test_case "inaccurate on the corpus" `Quick
             test_float_fixed_is_inaccurate
        :: float_fixed_props );
      ( "workloads",
        [
          Alcotest.test_case "schryer corpus" `Quick test_schryer_corpus;
          Alcotest.test_case "random corpora" `Quick test_random_corpora;
          Alcotest.test_case "torture reader inputs" `Quick test_torture_inputs;
          Alcotest.test_case "hard cases round-trip" `Quick
            test_hard_cases_round_trip;
        ] );
    ]
