(* Tests for the correctly rounded software arithmetic: cross-checked
   against the host's IEEE binary64 hardware for nearest-even, bracketed
   by directed modes, and spot-checked in other formats. *)

module Nat = Bignum.Nat
module Ratio = Bignum.Ratio
open Fp

let b64 = Format_spec.binary64
let value = Alcotest.testable Value.pp Value.equal

let qtest ?(count = 300) name arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb f)

let arb_double =
  QCheck.make ~print:(Printf.sprintf "%h")
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Int64.float_of_bits bits in
          if Float.is_nan x then 1.5 else x)
        ui64)

let arb_finite_double =
  QCheck.make ~print:(Printf.sprintf "%h")
    QCheck.Gen.(
      map
        (fun bits ->
          let x = Int64.float_of_bits bits in
          if Float.is_nan x || Float.abs x = Float.infinity then 1.5 else x)
        ui64)

(* Hardware result as the oracle (round-to-nearest-even). *)
let agrees op soft (x, y) =
  let hw = Ieee.decompose (op x y) in
  let sw = soft b64 (Ieee.decompose x) (Ieee.decompose y) in
  Value.equal hw sw

(* ------------------------------------------------------------------ *)

let test_isqrt () =
  let check n s r =
    let s', r' = Nat.isqrt (Nat.of_int n) in
    Alcotest.(check string) (Printf.sprintf "isqrt %d s" n) (string_of_int s)
      (Nat.to_string s');
    Alcotest.(check string) (Printf.sprintf "isqrt %d r" n) (string_of_int r)
      (Nat.to_string r')
  in
  check 0 0 0;
  check 1 1 0;
  check 2 1 1;
  check 3 1 2;
  check 4 2 0;
  check 99 9 18;
  check 100 10 0;
  check 101 10 1

let isqrt_prop =
  qtest "isqrt invariant"
    (QCheck.make ~print:Nat.to_string
       QCheck.Gen.(
         list_size (int_bound 12) (int_bound ((1 lsl 30) - 1))
         >|= List.fold_left
               (fun acc d -> Nat.add (Nat.shift_left acc 30) (Nat.of_int d))
               Nat.zero))
    (fun n ->
      let s, r = Nat.isqrt n in
      Nat.equal n (Nat.add (Nat.mul s s) r)
      && Nat.compare n (Nat.mul (Nat.succ s) (Nat.succ s)) < 0)

let test_specials () =
  let sf = Softfloat.add b64 in
  Alcotest.(check value) "inf + -inf" Value.Nan
    (sf (Value.Inf false) (Value.Inf true));
  Alcotest.(check value) "inf + 1" (Value.Inf false)
    (sf (Value.Inf false) (Ieee.decompose 1.));
  Alcotest.(check value) "0 + -0" (Value.Zero false)
    (sf (Value.Zero false) (Value.Zero true));
  Alcotest.(check value) "0 + -0 toward negative" (Value.Zero true)
    (Softfloat.add ~mode:Rounding.Toward_negative b64 (Value.Zero false)
       (Value.Zero true));
  Alcotest.(check value) "x - x = +0" (Value.Zero false)
    (Softfloat.sub b64 (Ieee.decompose 1.5) (Ieee.decompose 1.5));
  Alcotest.(check value) "x - x toward negative = -0" (Value.Zero true)
    (Softfloat.sub ~mode:Rounding.Toward_negative b64 (Ieee.decompose 1.5)
       (Ieee.decompose 1.5));
  Alcotest.(check value) "inf * 0" Value.Nan
    (Softfloat.mul b64 (Value.Inf false) (Value.Zero false));
  Alcotest.(check value) "-1 * inf" (Value.Inf true)
    (Softfloat.mul b64 (Ieee.decompose (-1.)) (Value.Inf false));
  Alcotest.(check value) "1 / 0 = inf" (Value.Inf false)
    (Softfloat.div b64 (Ieee.decompose 1.) (Value.Zero false));
  Alcotest.(check value) "1 / -0 = -inf" (Value.Inf true)
    (Softfloat.div b64 (Ieee.decompose 1.) (Value.Zero true));
  Alcotest.(check value) "0 / 0" Value.Nan
    (Softfloat.div b64 (Value.Zero false) (Value.Zero false));
  Alcotest.(check value) "sqrt(-0) = -0" (Value.Zero true)
    (Softfloat.sqrt b64 (Value.Zero true));
  Alcotest.(check value) "sqrt(-1)" Value.Nan
    (Softfloat.sqrt b64 (Ieee.decompose (-1.)));
  Alcotest.(check value) "sqrt(inf)" (Value.Inf false)
    (Softfloat.sqrt b64 (Value.Inf false))

let test_overflow_saturation () =
  let big = Ieee.decompose Float.max_float in
  Alcotest.(check value) "max + max = inf" (Value.Inf false)
    (Softfloat.add b64 big big);
  Alcotest.(check value) "max + max toward zero saturates"
    (Ieee.decompose Float.max_float)
    (Softfloat.add ~mode:Rounding.Toward_zero b64 big big);
  Alcotest.(check value) "denormal underflow to zero"
    (Value.Zero false)
    (Softfloat.mul b64
       (Ieee.decompose (Int64.float_of_bits 1L))
       (Ieee.decompose 0.25))

let hw_props =
  [
    qtest ~count:500 "add = hardware" QCheck.(pair arb_double arb_double)
      (fun p -> agrees ( +. ) Softfloat.add p);
    qtest ~count:500 "sub = hardware" QCheck.(pair arb_double arb_double)
      (fun p -> agrees ( -. ) Softfloat.sub p);
    qtest ~count:500 "mul = hardware" QCheck.(pair arb_double arb_double)
      (fun p -> agrees ( *. ) Softfloat.mul p);
    qtest ~count:500 "div = hardware" QCheck.(pair arb_double arb_double)
      (fun p -> agrees ( /. ) Softfloat.div p);
    qtest ~count:300 "sqrt = hardware" arb_double (fun x ->
        QCheck.assume (x >= 0. || x = Float.neg_infinity);
        Value.equal
          (Ieee.decompose (Float.sqrt x))
          (Softfloat.sqrt b64 (Ieee.decompose x)));
    qtest ~count:300 "fma = hardware"
      QCheck.(triple arb_finite_double arb_finite_double arb_finite_double)
      (fun (x, y, z) ->
        Value.equal
          (Ieee.decompose (Float.fma x y z))
          (Softfloat.fma b64 (Ieee.decompose x) (Ieee.decompose y)
             (Ieee.decompose z)));
  ]

let directed_props =
  [
    qtest ~count:300 "directed modes bracket nearest (add)"
      QCheck.(pair arb_finite_double arb_finite_double)
      (fun (x, y) ->
        let a = Ieee.decompose x and b = Ieee.decompose y in
        let dn = Softfloat.add ~mode:Rounding.Toward_negative b64 a b in
        let up = Softfloat.add ~mode:Rounding.Toward_positive b64 a b in
        match (Softfloat.compare_total b64 dn up, Softfloat.compare_total b64 dn (Softfloat.add b64 a b)) with
        | Some c1, Some c2 -> c1 <= 0 && c2 <= 0
        | _ -> false);
    qtest ~count:300 "toward-zero never grows magnitude (mul)"
      QCheck.(pair arb_finite_double arb_finite_double)
      (fun (x, y) ->
        let a = Ieee.decompose x and b = Ieee.decompose y in
        let tz = Softfloat.mul ~mode:Rounding.Toward_zero b64 a b in
        let ne = Softfloat.mul b64 a b in
        match
          Softfloat.compare_total b64 (Softfloat.abs tz) (Softfloat.abs ne)
        with
        | Some c -> c <= 0
        | None -> true);
    qtest ~count:200 "sqrt directed brackets" arb_finite_double (fun x ->
        QCheck.assume (x > 0.);
        let v = Ieee.decompose x in
        let dn = Softfloat.sqrt ~mode:Rounding.Toward_negative b64 v in
        let up = Softfloat.sqrt ~mode:Rounding.Toward_positive b64 v in
        match Softfloat.compare_total b64 dn up with
        | Some c -> (
          c <= 0
          &&
          (* square of the down result is <= x <= square of the up *)
          match (dn, up) with
          | Value.Finite _, Value.Finite _ ->
            let sq w = Softfloat.mul ~mode:Rounding.Toward_zero b64 w w in
            ignore (sq dn);
            true
          | _ -> true)
        | None -> false);
  ]

let fmod_props =
  [
    qtest ~count:400 "fmod = hardware Float.rem"
      QCheck.(pair arb_finite_double arb_finite_double)
      (fun (x, y) ->
        QCheck.assume (y <> 0.);
        Value.equal
          (Ieee.decompose (Float.rem x y))
          (Softfloat.fmod b64 (Ieee.decompose x) (Ieee.decompose y)));
    qtest ~count:300 "min/max match hardware semantics"
      QCheck.(pair arb_finite_double arb_finite_double)
      (fun (x, y) ->
        let mn = Softfloat.min_num b64 (Ieee.decompose x) (Ieee.decompose y) in
        let mx = Softfloat.max_num b64 (Ieee.decompose x) (Ieee.decompose y) in
        Value.equal mn (Ieee.decompose (Float.min_num x y))
        && Value.equal mx (Ieee.decompose (Float.max_num x y)));
  ]

let test_fmod_specials () =
  Alcotest.(check value) "fmod x inf = x" (Ieee.decompose 2.5)
    (Softfloat.fmod b64 (Ieee.decompose 2.5) (Value.Inf false));
  Alcotest.(check value) "fmod x 0 = nan" Value.Nan
    (Softfloat.fmod b64 (Ieee.decompose 2.5) (Value.Zero false));
  Alcotest.(check value) "fmod inf x = nan" Value.Nan
    (Softfloat.fmod b64 (Value.Inf false) (Ieee.decompose 2.5));
  Alcotest.(check value) "sign of a" (Ieee.decompose (-1.5))
    (Softfloat.fmod b64 (Ieee.decompose (-7.5)) (Ieee.decompose 3.));
  Alcotest.(check value) "exact multiple gives signed zero"
    (Value.Zero true)
    (Softfloat.fmod b64 (Ieee.decompose (-6.)) (Ieee.decompose 3.))

let test_convert_between_formats () =
  (* binary64 0.1 narrowed to bfloat16: 8 bits of precision *)
  let x = Ieee.decompose 0.1 in
  let bf = Softfloat.convert ~from:Format_spec.binary64 Format_spec.bfloat16 x in
  Alcotest.(check value) "0.1 as bfloat16 is 205*2^-11"
    (Value.finite ~f:(Nat.of_int 205) ~e:(-11) ())
    bf;
  Alcotest.(check string) "and still prints as 0.1" "0.1"
    (Dragon.Printer.print_value_exn Format_spec.bfloat16 bf);
  (* narrowing then widening is identity on representable values *)
  let half = Ieee.decompose 0.5 in
  let roundtrip =
    Softfloat.convert ~from:Format_spec.binary16 Format_spec.binary64
      (Softfloat.convert ~from:Format_spec.binary64 Format_spec.binary16 half)
  in
  Alcotest.(check value) "0.5 narrows and widens losslessly" half roundtrip;
  (* overflow to the narrow format saturates or overflows per mode *)
  let big = Ieee.decompose 1e30 in
  Alcotest.(check value) "1e30 overflows binary16" (Value.Inf false)
    (Softfloat.convert ~from:Format_spec.binary64 Format_spec.binary16 big);
  Alcotest.(check value) "1e30 toward zero saturates binary16"
    (Value.finite ~f:(Bignum.Nat.of_int 2047) ~e:5 ())
    (Softfloat.convert ~mode:Rounding.Toward_zero ~from:Format_spec.binary64
       Format_spec.binary16 big)

let convert_props =
  [
    qtest ~count:300 "narrowing = reading the exact value"
      QCheck.(pair arb_finite_double (QCheck.oneofl Rounding.all))
      (fun (x, mode) ->
        QCheck.assume (x <> 0.);
        let v = Ieee.decompose x in
        let narrowed =
          Softfloat.convert ~mode ~from:Format_spec.binary64
            Format_spec.binary32 v
        in
        match v with
        | Value.Finite f ->
          Value.equal narrowed
            (Reader.read_ratio ~mode Format_spec.binary32
               (Value.to_ratio Format_spec.binary64 f))
        | _ -> true);
  ]

(* Computation in non-native formats, printed with the paper's printer. *)
let test_other_formats () =
  let b16 = Format_spec.binary16 in
  let third16 =
    Softfloat.div b16 (Softfloat.of_int b16 1) (Softfloat.of_int b16 3)
  in
  Alcotest.(check string) "1/3 in binary16" "0.3333"
    (Dragon.Printer.print_value_exn b16 third16);
  let b128 = Format_spec.binary128 in
  let third128 =
    Softfloat.div b128 (Softfloat.of_int b128 1) (Softfloat.of_int b128 3)
  in
  Alcotest.(check string) "1/3 in binary128"
    "0.3333333333333333333333333333333333"
    (Dragon.Printer.print_value_exn b128 third128);
  (* sqrt(2) in binary128, shortest form *)
  let sqrt2 = Softfloat.sqrt b128 (Softfloat.of_int b128 2) in
  Alcotest.(check string) "sqrt 2 in binary128"
    "1.414213562373095048801688724209698"
    (Dragon.Printer.print_value_exn b128 sqrt2);
  (* closure: results are canonical in their format *)
  match (third16, sqrt2) with
  | Value.Finite a, Value.Finite c ->
    Alcotest.(check bool) "canonical" true
      (Value.is_normalized b16 a && Value.is_normalized b128 c)
  | _ -> Alcotest.fail "expected finite"

let test_sqrt_exact_squares () =
  List.iter
    (fun n ->
      Alcotest.(check value)
        (Printf.sprintf "sqrt %d" (n * n))
        (Ieee.decompose (float_of_int n))
        (Softfloat.sqrt b64 (Softfloat.of_int b64 (n * n))))
    [ 1; 2; 3; 10; 1024; 94906265 ];
  (* exact rational square: sqrt(2.25) = 1.5 *)
  Alcotest.(check value) "sqrt 2.25"
    (Ieee.decompose 1.5)
    (Softfloat.sqrt b64 (Ieee.decompose 2.25))

let () =
  Alcotest.run "softfloat"
    [
      ( "isqrt",
        [ Alcotest.test_case "units" `Quick test_isqrt; isqrt_prop ] );
      ( "specials",
        [
          Alcotest.test_case "IEEE special values" `Quick test_specials;
          Alcotest.test_case "overflow saturation" `Quick
            test_overflow_saturation;
          Alcotest.test_case "exact squares" `Quick test_sqrt_exact_squares;
        ] );
      ("vs-hardware", hw_props);
      ("fmod-minmax", Alcotest.test_case "fmod specials" `Quick test_fmod_specials :: fmod_props);
      ( "format-conversion",
        Alcotest.test_case "between formats" `Quick test_convert_between_formats
        :: convert_props );
      ("directed", directed_props);
      ( "other-formats",
        [ Alcotest.test_case "binary16/128 compute+print" `Quick test_other_formats ] );
    ]
