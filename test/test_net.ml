(* Tests for the networked conversion daemon (lib/net): the Wire
   protocol grammar, the sharded Memo cache (bounds under concurrency),
   and the Server engine end-to-end over real TCP sockets — verbs,
   explicit load shedding, protocol-error resynchronisation, graceful
   drain (no accepted request lost), and a chaos run with the network
   fault points and worker-kill armed, verifying zero wrong
   conversions. *)

module Wire = Net.Wire
module Memo = Net.Memo
module Server = Net.Server
module Error = Robust.Error
module Faults = Robust.Faults

let convert_real input =
  match
    Reader.read ~mode:Fp.Rounding.To_nearest_even Fp.Format_spec.binary64 input
  with
  | Error _ as e -> e
  | Ok v ->
    Dragon.Printer.print_value ~base:10 ~mode:Fp.Rounding.To_nearest_even
      ~strategy:Dragon.Scaling.Fast_estimate ~notation:Dragon.Render.Auto
      Fp.Format_spec.binary64 v

(* {2 Wire} *)

let test_wire_requests () =
  let ok s = Result.get_ok (Wire.parse_request s) in
  let errs s = Result.is_error (Wire.parse_request s) in
  Alcotest.(check bool) "conv" true
    (ok "CONV 0.1" = Wire.Conv { input = "0.1"; tid = 0 });
  Alcotest.(check bool) "conv trims" true
    (ok "CONV   0.1 " = Wire.Conv { input = "0.1"; tid = 0 });
  Alcotest.(check bool) "conv cr" true
    (ok "CONV 0.1\r" = Wire.Conv { input = "0.1"; tid = 0 });
  Alcotest.(check bool) "conv tid" true
    (ok "CONV TID=7 0.1" = Wire.Conv { input = "0.1"; tid = 7 });
  Alcotest.(check bool) "conv tid trims" true
    (ok "CONV  TID=7  0.1" = Wire.Conv { input = "0.1"; tid = 7 });
  Alcotest.(check bool) "conv tid-like input" true
    (ok "CONV TID" = Wire.Conv { input = "TID"; tid = 0 });
  Alcotest.(check bool) "batch" true
    (ok "BATCH 10" = Wire.Batch { count = 10; tid = 0 });
  Alcotest.(check bool) "batch tid" true
    (ok "BATCH 10 TID=9" = Wire.Batch { count = 10; tid = 9 });
  Alcotest.(check bool) "trace" true (ok "TRACE" = Wire.Trace_dump);
  Alcotest.(check bool) "deadline" true (ok "DEADLINE 50" = Wire.Deadline 50);
  Alcotest.(check bool) "ping" true (ok "PING" = Wire.Ping);
  Alcotest.(check bool) "healthz" true (ok "HEALTHZ" = Wire.Healthz);
  Alcotest.(check bool) "stats" true (ok "STATS" = Wire.Stats);
  Alcotest.(check bool) "metrics" true (ok "METRICS" = Wire.Metrics);
  Alcotest.(check bool) "quit" true (ok "QUIT" = Wire.Quit);
  Alcotest.(check bool) "empty conv" true (errs "CONV ");
  Alcotest.(check bool) "bad tid" true (errs "CONV TID=x 0.1");
  Alcotest.(check bool) "tid zero" true (errs "CONV TID=0 0.1");
  Alcotest.(check bool) "tid alone" true (errs "CONV TID=5");
  Alcotest.(check bool) "batch trailing junk" true (errs "BATCH 10 extra");
  Alcotest.(check bool) "trace junk" true (errs "TRACE x");
  (* render/parse round-trip of the request frames the client emits *)
  Alcotest.(check string) "render conv" "CONV 0.1\n" (Wire.render_conv "0.1");
  Alcotest.(check string) "render conv tid" "CONV TID=7 0.1\n"
    (Wire.render_conv ~tid:7 "0.1");
  Alcotest.(check string) "render batch tid" "BATCH 10 TID=9\n"
    (Wire.render_batch ~tid:9 10);
  Alcotest.(check bool) "batch 0" true (errs "BATCH 0");
  Alcotest.(check bool) "batch over" true
    (errs (Printf.sprintf "BATCH %d" (Wire.max_batch + 1)));
  Alcotest.(check bool) "batch junk" true (errs "BATCH ten");
  Alcotest.(check bool) "deadline negative" true (errs "DEADLINE -1");
  Alcotest.(check bool) "deadline over" true
    (errs (Printf.sprintf "DEADLINE %d" (Wire.max_deadline_ms + 1)));
  Alcotest.(check bool) "ping junk" true (errs "PING x");
  Alcotest.(check bool) "unknown" true (errs "FROB 1");
  Alcotest.(check bool) "empty" true (errs "")

let test_wire_replies () =
  let round r =
    let s = Wire.render_reply r in
    let line = String.sub s 0 (String.length s - 1) in
    Result.get_ok (Wire.parse_reply_line line)
  in
  Alcotest.(check bool) "ok" true (round (Wire.Converted "0.1") = Wire.Converted "0.1");
  Alcotest.(check bool) "deg" true (round (Wire.Degraded "1.5") = Wire.Degraded "1.5");
  Alcotest.(check bool) "err" true
    (round (Wire.Failed { cls = "syntax"; detail = "bad" })
    = Wire.Failed { cls = "syntax"; detail = "bad" });
  Alcotest.(check bool) "shed" true
    (round (Wire.Shed { reason = "queue-full"; retry_after_ms = None })
    = Wire.Shed { reason = "queue-full"; retry_after_ms = None });
  Alcotest.(check bool) "shed retry-after" true
    (round (Wire.Shed { reason = "overload"; retry_after_ms = Some 40 })
    = Wire.Shed { reason = "overload"; retry_after_ms = Some 40 });
  Alcotest.(check string) "shed rendering" "SHED overload retry-after-ms=40\n"
    (Wire.render_reply
       (Wire.Shed { reason = "overload"; retry_after_ms = Some 40 }));
  Alcotest.(check bool) "end" true
    (round (Wire.Batch_end { ok = 3; failed = 1; shed = 2 })
    = Wire.Batch_end { ok = 3; failed = 1; shed = 2 });
  Alcotest.(check bool) "pong" true (round Wire.Pong = Wire.Pong);
  Alcotest.(check bool) "bye" true (round Wire.Bye = Wire.Bye);
  (* READY/DRAINING attrs round-trip; the bare forms stay byte-identical
     to the pre-attr protocol *)
  Alcotest.(check string) "ready bare" "READY\n"
    (Wire.render_reply (Wire.Ready ""));
  Alcotest.(check bool) "ready attrs" true
    (round (Wire.Ready "uptime-s=3 version=1.0.0 wedges=0")
    = Wire.Ready "uptime-s=3 version=1.0.0 wedges=0");
  Alcotest.(check bool) "draining attrs" true
    (round (Wire.Draining "uptime-s=3") = Wire.Draining "uptime-s=3");
  (* newline injection cannot desynchronise the framing *)
  let s = Wire.render_reply (Wire.Failed { cls = "syntax"; detail = "a\nb" }) in
  Alcotest.(check int) "one newline" 1
    (String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s);
  (* payload headers *)
  Alcotest.(check (option int)) "payload len" (Some 12)
    (Wire.payload_length "STATS 12");
  Alcotest.(check (option int)) "not payload" None (Wire.payload_length "OK 1")

(* {2 Memo} *)

let test_memo_basic () =
  let m = Memo.create ~shards:2 ~capacity:8 () in
  Alcotest.(check (option string)) "miss" None (Memo.find m "a");
  Memo.add m "a" "1";
  Alcotest.(check (option string)) "hit" (Some "1") (Memo.find m "a");
  Memo.add m "a" "2";
  Alcotest.(check (option string)) "replace" (Some "2") (Memo.find m "a");
  let s = Memo.stats m in
  Alcotest.(check int) "hits" 2 s.Memo.hits;
  Alcotest.(check int) "misses" 1 s.Memo.misses;
  Alcotest.(check int) "replace does not grow" 1 s.Memo.entries;
  (* overflow each shard: entries stay bounded, evictions counted *)
  for i = 0 to 99 do
    Memo.add m (string_of_int i) (string_of_int i)
  done;
  let s = Memo.stats m in
  Alcotest.(check bool) "bounded" true (s.Memo.entries <= s.Memo.capacity);
  Alcotest.(check bool) "evicted" true (s.Memo.evictions > 0)

let test_memo_concurrent () =
  let m = Memo.create ~shards:4 ~capacity:64 () in
  let worker seed () =
    let st = Random.State.make [| seed |] in
    for _ = 1 to 20_000 do
      let k = string_of_int (Random.State.int st 500) in
      match Memo.find m k with
      | Some _ -> ()
      | None -> Memo.add m k k
    done
  in
  let ds = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  let s = Memo.stats m in
  Alcotest.(check bool) "bounded under concurrency" true
    (s.Memo.entries <= s.Memo.capacity);
  Alcotest.(check int) "accounting closes" (s.Memo.hits + s.Memo.misses) 80_000;
  (* every cached value is the exact one inserted for its key *)
  for i = 0 to 499 do
    let k = string_of_int i in
    match Memo.find m k with
    | Some v -> Alcotest.(check string) "value intact" k v
    | None -> ()
  done

(* Invariants under 8-domain contention: the per-shard bound must hold
   at every moment (sampled live by a prowler domain while writers
   hammer the cache), and once writers are quiescent the counters must
   reconcile exactly: finds = hits + misses, adds = insertions +
   replacements, insertions = entries + evictions. *)
let test_memo_invariants_concurrent () =
  let m = Memo.create ~shards:4 ~capacity:32 () in
  let cap = Memo.per_shard_capacity m in
  let writers = 8 in
  let per_writer = 25_000 in
  let finds = Atomic.make 0 in
  let adds = Atomic.make 0 in
  let stop = Atomic.make false in
  let overflow_seen = Atomic.make 0 in
  let prowler =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Array.iter
            (fun n -> if n > cap then Atomic.incr overflow_seen)
            (Memo.shard_entries m)
        done)
  in
  let worker seed () =
    let st = Random.State.make [| seed; 0xca5e |] in
    for _ = 1 to per_writer do
      (* mixed workload: ~half repeats (hits + replacements), ~half a
         wide keyspace (misses + insertions + evictions) *)
      let k = string_of_int (Random.State.int st 2_000) in
      Atomic.incr finds;
      match Memo.find m k with
      | Some _ ->
        if Random.State.bool st then begin
          Atomic.incr adds;
          Memo.add m k (k ^ "'")
        end
      | None ->
        Atomic.incr adds;
        Memo.add m k k
    done
  in
  let ds = List.init writers (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join ds;
  Atomic.set stop true;
  Domain.join prowler;
  Alcotest.(check int) "per-shard bound held at every sample" 0
    (Atomic.get overflow_seen);
  let s = Memo.stats m in
  Alcotest.(check int) "finds reconcile" (Atomic.get finds)
    (s.Memo.hits + s.Memo.misses);
  Alcotest.(check int) "adds reconcile" (Atomic.get adds)
    (s.Memo.insertions + s.Memo.replacements);
  Alcotest.(check int) "insertions reconcile" s.Memo.insertions
    (s.Memo.entries + s.Memo.evictions);
  Alcotest.(check int) "full at quiescence" (4 * cap) s.Memo.entries

(* {2 Server client harness} *)

type client = {
  fd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  acc : Buffer.t;
}

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  { fd; rbuf = Bytes.create 4096; rpos = 0; rlen = 0; acc = Buffer.create 64 }

let close c = try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let send c s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write c.fd b off len in
      go (off + n) (len - n)
    end
  in
  go 0 (Bytes.length b)

exception Closed_by_server

let refill c =
  let n = Unix.read c.fd c.rbuf 0 (Bytes.length c.rbuf) in
  if n = 0 then raise Closed_by_server;
  c.rpos <- 0;
  c.rlen <- n

let rec recv_line c =
  if c.rpos >= c.rlen then begin
    refill c;
    recv_line c
  end
  else
    match Bytes.index_from_opt c.rbuf c.rpos '\n' with
    | Some i when i < c.rlen ->
      Buffer.add_subbytes c.acc c.rbuf c.rpos (i - c.rpos);
      c.rpos <- i + 1;
      let s = Buffer.contents c.acc in
      Buffer.clear c.acc;
      s
    | _ ->
      Buffer.add_subbytes c.acc c.rbuf c.rpos (c.rlen - c.rpos);
      c.rpos <- c.rlen;
      recv_line c

let rec recv_bytes c n =
  if n = 0 then ()
  else if c.rpos < c.rlen then begin
    let take = min n (c.rlen - c.rpos) in
    Buffer.add_subbytes c.acc c.rbuf c.rpos take;
    c.rpos <- c.rpos + take;
    recv_bytes c (n - take)
  end
  else begin
    refill c;
    recv_bytes c n
  end

let recv_reply c =
  let line = recv_line c in
  match Wire.parse_reply_line line with
  | Error e -> Alcotest.failf "unparseable reply %S: %s" line e
  | Ok (Wire.Payload { verb; _ }) ->
    let n =
      match Wire.payload_length line with
      | Some n -> n
      | None -> Alcotest.failf "payload header without length: %S" line
    in
    recv_bytes c n;
    let body = Buffer.contents c.acc in
    Buffer.clear c.acc;
    let nl = recv_line c in
    Alcotest.(check string) "payload trailing newline" "" nl;
    Wire.Payload { verb; body }
  | Ok r -> r

let with_server ?config ?(convert = convert_real) f =
  let server =
    match Server.start ?config ~convert (Server.Tcp ("127.0.0.1", 0)) with
    | Result.Ok s -> s
    | Result.Error e -> Alcotest.failf "server start: %s" (Error.to_string e)
  in
  let port = Option.get (Server.port server) in
  Fun.protect
    ~finally:(fun () ->
      Server.drain server;
      ignore (Server.wait server))
    (fun () -> f server port)

(* {2 Server tests} *)

let test_server_verbs () =
  with_server (fun server port ->
      let c = connect port in
      send c "PING\n";
      Alcotest.(check bool) "pong" true (recv_reply c = Wire.Pong);
      send c "HEALTHZ\n";
      (match recv_reply c with
      | Wire.Ready attrs ->
        (* attr soup must carry the documented keys *)
        List.iter
          (fun key ->
            Alcotest.(check bool) ("healthz " ^ key) true
              (List.exists
                 (fun p ->
                   String.length p > String.length key
                   && String.sub p 0 (String.length key + 1) = key ^ "=")
                 (String.split_on_char ' ' attrs)))
          [ "uptime-s"; "version"; "wedges"; "memo-hit-rate" ]
      | r -> Alcotest.failf "expected READY, got %s" (Wire.render_reply r));
      send c "CONV 0.1\n";
      Alcotest.(check bool) "conv" true (recv_reply c = Wire.Converted "0.1");
      send c "CONV 0.1\n";
      Alcotest.(check bool) "conv cached" true
        (recv_reply c = Wire.Converted "0.1");
      send c "CONV 1e23\n";
      Alcotest.(check bool) "conv sci" true (recv_reply c = Wire.Converted "1e23");
      send c "CONV bogus\n";
      (match recv_reply c with
      | Wire.Failed { cls = "syntax"; _ } -> ()
      | r -> Alcotest.failf "expected syntax error, got %s" (Wire.render_reply r));
      send c "DEADLINE 5000\n";
      Alcotest.(check bool) "deadline ack" true
        (recv_reply c = Wire.Converted "deadline=5000");
      send c "BATCH 3\n1.5\n2.5\nnope\n";
      Alcotest.(check bool) "b1" true (recv_reply c = Wire.Converted "1.5");
      Alcotest.(check bool) "b2" true (recv_reply c = Wire.Converted "2.5");
      (match recv_reply c with
      | Wire.Failed _ -> ()
      | r -> Alcotest.failf "expected failure, got %s" (Wire.render_reply r));
      (match recv_reply c with
      | Wire.Batch_end { ok = 2; failed = 1; shed = 0 } -> ()
      | r -> Alcotest.failf "bad END: %s" (Wire.render_reply r));
      send c "STATS\n";
      (match recv_reply c with
      | Wire.Payload { verb = "STATS"; body } ->
        Alcotest.(check bool) "stats json" true
          (String.length body > 2 && body.[0] = '{')
      | r -> Alcotest.failf "bad STATS: %s" (Wire.render_reply r));
      send c "METRICS\n";
      (match recv_reply c with
      | Wire.Payload { verb = "METRICS"; _ } -> ()
      | r -> Alcotest.failf "bad METRICS: %s" (Wire.render_reply r));
      send c "QUIT\n";
      Alcotest.(check bool) "bye" true (recv_reply c = Wire.Bye);
      close c;
      let s = Server.stats server in
      Alcotest.(check int) "requests" 7 s.Server.requests;
      Alcotest.(check int) "cache hit" 1 s.Server.cache_hits;
      Alcotest.(check int) "proto clean" 0 s.Server.proto_errors)

let test_server_proto_resync () =
  with_server (fun server port ->
      let c = connect port in
      send c "FROB 1\n";
      (match recv_reply c with
      | Wire.Failed { cls = "proto"; _ } -> ()
      | r -> Alcotest.failf "expected proto error, got %s" (Wire.render_reply r));
      (* an oversized frame is discarded up to its newline and the
         stream stays in sync *)
      let budget = Robust.Budget.get () in
      let huge = String.make (budget.Robust.Budget.max_input_length + 256) 'x' in
      send c ("CONV " ^ huge ^ "\n");
      (match recv_reply c with
      | Wire.Failed { cls = "proto"; detail } ->
        Alcotest.(check string) "too long" "frame-too-long" detail
      | r -> Alcotest.failf "expected proto error, got %s" (Wire.render_reply r));
      send c "CONV 0.5\n";
      Alcotest.(check bool) "resynced" true (recv_reply c = Wire.Converted "0.5");
      close c;
      let s = Server.stats server in
      Alcotest.(check int) "proto errors" 2 s.Server.proto_errors)

(* Regression (stream resync with pipelined requests): buffered
   requests sitting behind a malformed frame must each get their own
   reply, one-for-one and in order — the ERR proto answer must not eat,
   duplicate or reorder the replies of the requests queued after it. *)
let test_server_pipelined_proto_resync () =
  with_server (fun server port ->
      let c = connect port in
      (* one write, five frames: good, bad verb, good, bad again, good *)
      send c "CONV 0.1\nFROB 1\nCONV 0.5\nGARBAGE ###\nCONV 1.5\nPING\n";
      Alcotest.(check bool) "r1" true (recv_reply c = Wire.Converted "0.1");
      (match recv_reply c with
      | Wire.Failed { cls = "proto"; _ } -> ()
      | r -> Alcotest.failf "expected proto error, got %s" (Wire.render_reply r));
      Alcotest.(check bool) "r3" true (recv_reply c = Wire.Converted "0.5");
      (match recv_reply c with
      | Wire.Failed { cls = "proto"; _ } -> ()
      | r -> Alcotest.failf "expected proto error, got %s" (Wire.render_reply r));
      Alcotest.(check bool) "r5" true (recv_reply c = Wire.Converted "1.5");
      Alcotest.(check bool) "r6" true (recv_reply c = Wire.Pong);
      (* nothing further is buffered: a fresh request gets exactly one
         fresh reply *)
      send c "CONV 2.5\n";
      Alcotest.(check bool) "r7" true (recv_reply c = Wire.Converted "2.5");
      close c;
      let s = Server.stats server in
      Alcotest.(check int) "both proto errors counted" 2 s.Server.proto_errors)

(* Adaptive admission: with a known-slow service and a deadline shorter
   than the projected queue wait, the daemon refuses up front with
   [SHED overload] and a retry-after hint instead of converting a reply
   that would arrive dead. *)
let test_server_overload_shed () =
  let slow input =
    Unix.sleepf 0.1;
    convert_real input
  in
  let config =
    {
      Server.default_config with
      Server.jobs = 1;
      admission_capacity = 64;
      cache_capacity = 0;
    }
  in
  with_server ~config ~convert:slow (fun server port ->
      let a = connect port in
      (* warm the service-time EWMA with one completed conversion *)
      send a "CONV 0.1\n";
      Alcotest.(check bool) "warmup" true (recv_reply a = Wire.Converted "0.1");
      (* occupy the only worker... *)
      send a "CONV 0.5\n";
      Thread.delay 0.02;
      (* ...then ask for a 30 ms answer while ~100 ms of work is queued *)
      let b = connect port in
      send b "DEADLINE 30\nCONV 1.5\n";
      Alcotest.(check bool) "ack" true (recv_reply b = Wire.Converted "deadline=30");
      (match recv_reply b with
      | Wire.Shed { reason = "overload"; retry_after_ms = Some ms } ->
        Alcotest.(check bool) "positive hint" true (ms >= 1)
      | r -> Alcotest.failf "expected SHED overload, got %s" (Wire.render_reply r));
      Alcotest.(check bool) "queued conv fine" true
        (recv_reply a = Wire.Converted "0.5");
      close a;
      close b;
      let s = Server.stats server in
      Alcotest.(check bool) "overload shed counted" true
        (s.Server.shed_overload >= 1))

(* Memoization skip: with memo_min_us set above any realistic service
   time, every conversion is "too fast to be worth caching" — repeats
   recompute (no cache hits), the skip counter advances, and the STATS
   dump carries the new field.  The inverse (memo_min_us = 0 memoizes
   everything) is the library default every other test runs under. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_server_memo_skip () =
  let config = { Server.default_config with Server.memo_min_us = 1e9 } in
  with_server ~config (fun server port ->
      let c = connect port in
      send c "CONV 0.1\nCONV 0.1\n";
      Alcotest.(check bool) "a" true (recv_reply c = Wire.Converted "0.1");
      Alcotest.(check bool) "b" true (recv_reply c = Wire.Converted "0.1");
      send c "STATS\n";
      (match recv_reply c with
      | Wire.Payload { verb = "STATS"; body } ->
        Alcotest.(check bool) "stats carries cache_skips" true
          (contains body "\"cache_skips\":2")
      | r -> Alcotest.failf "bad STATS: %s" (Wire.render_reply r));
      close c;
      let s = Server.stats server in
      Alcotest.(check int) "no cache hits" 0 s.Server.cache_hits;
      Alcotest.(check int) "both skipped" 2 s.Server.cache_skips)

(* Watchdog: a wedged worker (alive but stalled far past the request's
   deadline) must not capture its request forever — the watchdog answers
   with a structured budget timeout, replaces the worker, and the next
   request converts normally. *)
let test_server_worker_wedge () =
  Faults.reset_call_counts ();
  Faults.arm_at ~call:1 "service.worker-wedge";
  Fun.protect
    ~finally:(fun () ->
      Faults.disarm_all ();
      Faults.reset_call_counts ())
  @@ fun () ->
  let config =
    {
      Server.default_config with
      Server.jobs = 1;
      cache_capacity = 0;
      watchdog =
        Some
          {
            Service.Supervisor.poll_ms = 10;
            grace_ms = 50;
            stuck_ms = 10_000;
          };
    }
  in
  with_server ~config (fun server port ->
      let c = connect port in
      send c "DEADLINE 100\nCONV 0.1\n";
      Alcotest.(check bool) "ack" true
        (recv_reply c = Wire.Converted "deadline=100");
      (match recv_reply c with
      | Wire.Failed { cls = "budget"; _ } -> ()
      | r ->
        Alcotest.failf "expected budget timeout from the watchdog, got %s"
          (Wire.render_reply r));
      (* the wedged worker was replaced: the stream keeps working *)
      send c "DEADLINE 0\nCONV 0.5\n";
      Alcotest.(check bool) "clear ack" true
        (recv_reply c = Wire.Converted "deadline=0");
      Alcotest.(check bool) "replacement converts" true
        (recv_reply c = Wire.Converted "0.5");
      close c;
      let s = Server.stats server in
      Alcotest.(check bool) "wedge detected" true
        (s.Server.supervisor.Service.Supervisor.wedges >= 1))

let test_server_shedding () =
  (* one worker, one admission slot, slow conversions: concurrent
     clients must get explicit SHED queue-full replies, never silence *)
  let slow input =
    Unix.sleepf 0.15;
    convert_real input
  in
  let config =
    {
      Server.default_config with
      Server.jobs = 1;
      admission_capacity = 1;
      cache_capacity = 0;
    }
  in
  with_server ~config ~convert:slow (fun server port ->
      let n = 6 in
      let replies = Array.make n Wire.Pong in
      let threads =
        List.init n (fun i ->
            Thread.create
              (fun () ->
                let c = connect port in
                send c "CONV 0.125\n";
                replies.(i) <- recv_reply c;
                close c)
              ())
      in
      List.iter Thread.join threads;
      let ok = ref 0 and shed = ref 0 in
      Array.iter
        (function
          | Wire.Converted "0.125" -> incr ok
          | Wire.Shed { reason = "queue-full"; retry_after_ms } ->
            (* the shed must carry a machine-readable retry hint *)
            Alcotest.(check bool) "retry-after present" true
              (match retry_after_ms with Some ms -> ms >= 1 | None -> false);
            incr shed
          | r -> Alcotest.failf "unexpected reply %s" (Wire.render_reply r))
        replies;
      Alcotest.(check int) "every request answered" n (!ok + !shed);
      Alcotest.(check bool) "some converted" true (!ok >= 1);
      Alcotest.(check bool) "some shed" true (!shed >= 1);
      let s = Server.stats server in
      Alcotest.(check int) "sheds counted" !shed s.Server.shed_queue_full)

let test_server_drain_loses_nothing () =
  let slowish input =
    Unix.sleepf 0.02;
    convert_real input
  in
  let config =
    { Server.default_config with Server.jobs = 2; cache_capacity = 0 }
  in
  with_server ~config ~convert:slowish (fun server port ->
      let n_threads = 4 in
      let sent = Array.make n_threads 0 in
      let answered = Array.make n_threads 0 in
      let shed = Array.make n_threads 0 in
      let wrong = Array.make n_threads 0 in
      let threads =
        List.init n_threads (fun i ->
            Thread.create
              (fun () ->
                let c = connect port in
                (try
                   for _ = 1 to 200 do
                     send c "CONV 0.375\n";
                     sent.(i) <- sent.(i) + 1;
                     match recv_reply c with
                     | Wire.Converted "0.375" | Wire.Degraded _ ->
                       answered.(i) <- answered.(i) + 1
                     | Wire.Shed _ -> shed.(i) <- shed.(i) + 1
                     | _ -> wrong.(i) <- wrong.(i) + 1
                   done
                 with Closed_by_server | Unix.Unix_error (_, _, _) -> ());
                close c)
              ())
      in
      Thread.delay 0.3;
      Server.drain server;
      let final = Server.wait server in
      List.iter Thread.join threads;
      let total a = Array.fold_left ( + ) 0 a in
      (* serial request/reply per connection: every request either got a
         reply or hit EOF after drain shut the connection down — but a
         request the server ADMITTED always got its reply first *)
      Alcotest.(check int) "no wrong replies" 0 (total wrong);
      Alcotest.(check bool) "work happened before drain" true
        (total answered > 0);
      Alcotest.(check int) "server answered every admitted request"
        (final.Server.replies_ok + final.Server.replies_degraded
       + final.Server.replies_failed + final.Server.shed_queue_full
        + final.Server.shed_overload + final.Server.shed_draining)
        final.Server.requests;
      (* the client-observed gap (sent but unanswered) is only ever the
         last in-flight request of each connection, cut by EOF *)
      Alcotest.(check bool) "bounded loss at EOF" true
        (total sent - (total answered + total shed) <= n_threads))

let test_server_chaos () =
  let requests =
    match Sys.getenv_opt "NET_CHAOS_REQUESTS" with
    | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 10_000)
    | None -> 10_000
  in
  Faults.arm ~probability:0.01 "service.worker-kill";
  Faults.arm ~probability:0.01 "net.slow-client";
  Faults.arm ~probability:0.02 "net.partial-write";
  (* any failure below reproduces with this line's seed + schedule *)
  Printf.printf "chaos: reproduce with BDPRINT_FAULTS_SEED=%d BDPRINT_FAULTS=%S\n%!"
    Faults.seed (Faults.spec_string ());
  Fun.protect ~finally:Faults.disarm_all @@ fun () ->
  let config =
    {
      Server.default_config with
      Server.jobs = 3;
      admission_capacity = 64;
      cache_capacity = 512;
    }
  in
  with_server ~config (fun server port ->
      (* hot values exercise the cache; random doubles exercise the
         pipeline; expected outputs are computed fault-free in this
         thread (the armed points only fire in workers / write paths) *)
      let hot = [| "0"; "1"; "0.5"; "0.1"; "1e23"; "-2.5" |] in
      let st = Random.State.make [| Faults.seed; 0xbdc0de; requests |] in
      let fresh_input () =
        if Random.State.int st 4 = 0 then hot.(Random.State.int st 6)
        else
          let f = Int64.float_of_bits (Random.State.int64 st Int64.max_int) in
          match classify_float f with
          | FP_nan | FP_infinite -> "0.25"
          | _ -> Printf.sprintf "%.17g" f
      in
      let n_threads = 4 in
      let per_thread = requests / n_threads in
      let wrong = Atomic.make 0 in
      let ok = Atomic.make 0 in
      let deg = Atomic.make 0 in
      let shed = Atomic.make 0 in
      let failed = Atomic.make 0 in
      let proto = Atomic.make 0 in
      let check_outcome input reply =
        let expected = convert_real input in
        match (reply, expected) with
        | Wire.Converted out, Ok e ->
          if out <> e then Atomic.incr wrong else Atomic.incr ok
        | Wire.Degraded out, Ok e ->
          (* crash/breaker fallback: different spelling, same value *)
          if float_of_string out <> float_of_string e then Atomic.incr wrong
          else Atomic.incr deg
        | Wire.Failed _, Error _ -> Atomic.incr failed
        | Wire.Shed _, _ -> Atomic.incr shed
        | Wire.Failed { cls; detail }, Ok _ ->
          (* a degraded-fallback failure is only legal for inputs the
             host fallback cannot parse; for plain doubles it is wrong *)
          ignore (cls, detail);
          Atomic.incr wrong
        | _, _ -> Atomic.incr wrong
      in
      let client_loop tid () =
        let c = connect port in
        let stc = Random.State.make [| tid; 42 |] in
        for i = 1 to per_thread do
          let input = fresh_input () in
          (* the malformed-frame fault: inject garbage, expect ERR proto,
             stream stays usable *)
          if Faults.fires "net.malformed-frame" then begin
            send c "GARBAGE ###\n";
            match recv_reply c with
            | Wire.Failed { cls = "proto"; _ } -> Atomic.incr proto
            | r ->
              Alcotest.failf "malformed frame got %s" (Wire.render_reply r)
          end;
          send c ("CONV " ^ input ^ "\n");
          check_outcome input (recv_reply c);
          if i mod 500 = 0 then ignore (Random.State.int stc 2)
        done;
        send c "QUIT\n";
        (match recv_reply c with
        | Wire.Bye -> ()
        | r -> Alcotest.failf "bad BYE: %s" (Wire.render_reply r));
        close c
      in
      (* arm the client-side fault too *)
      Faults.arm ~probability:0.01 "net.malformed-frame";
      let threads =
        List.init n_threads (fun i -> Thread.create (client_loop i) ())
      in
      List.iter Thread.join threads;
      (* the daemon survived: still answering *)
      let c = connect port in
      send c "PING\n";
      Alcotest.(check bool) "daemon alive" true (recv_reply c = Wire.Pong);
      close c;
      Alcotest.(check int) "zero wrong conversions" 0 (Atomic.get wrong);
      let answered =
        Atomic.get ok + Atomic.get deg + Atomic.get shed + Atomic.get failed
      in
      Alcotest.(check int) "every request answered explicitly"
        (n_threads * per_thread) answered;
      let s = Server.stats server in
      Alcotest.(check int) "proto errors counted" (Atomic.get proto)
        s.Server.proto_errors;
      Alcotest.(check bool) "chaos actually happened" true
        (s.Server.supervisor.Service.Supervisor.crashes > 0
        || Atomic.get proto > 0);
      Alcotest.(check int) "respawn healed every crash"
        s.Server.supervisor.Service.Supervisor.crashes
        s.Server.supervisor.Service.Supervisor.respawns)

let test_server_deadline () =
  (* a 1 ms deadline on a slow conversion fails with a budget error *)
  let slow input =
    Unix.sleepf 0.05;
    Robust.Budget.check_deadline ();
    convert_real input
  in
  let config = { Server.default_config with Server.cache_capacity = 0 } in
  with_server ~config ~convert:slow (fun _server port ->
      let c = connect port in
      send c "DEADLINE 1\nCONV 0.1\n";
      Alcotest.(check bool) "ack" true (recv_reply c = Wire.Converted "deadline=1");
      (match recv_reply c with
      | Wire.Failed { cls = "budget"; _ } -> ()
      | r -> Alcotest.failf "expected budget timeout, got %s" (Wire.render_reply r));
      send c "DEADLINE 0\nCONV 0.1\n";
      Alcotest.(check bool) "clear ack" true
        (recv_reply c = Wire.Converted "deadline=0");
      Alcotest.(check bool) "no deadline converts" true
        (recv_reply c = Wire.Converted "0.1");
      close c)

let () =
  Alcotest.run "net"
    [
      ( "wire",
        [
          Alcotest.test_case "requests" `Quick test_wire_requests;
          Alcotest.test_case "replies" `Quick test_wire_replies;
        ] );
      ( "memo",
        [
          Alcotest.test_case "basic" `Quick test_memo_basic;
          Alcotest.test_case "concurrent" `Quick test_memo_concurrent;
          Alcotest.test_case "invariants-8-domains" `Quick
            test_memo_invariants_concurrent;
        ] );
      ( "server",
        [
          Alcotest.test_case "verbs" `Quick test_server_verbs;
          Alcotest.test_case "proto-resync" `Quick test_server_proto_resync;
          Alcotest.test_case "pipelined-proto-resync" `Quick
            test_server_pipelined_proto_resync;
          Alcotest.test_case "shedding" `Quick test_server_shedding;
          Alcotest.test_case "overload-shed" `Quick test_server_overload_shed;
          Alcotest.test_case "memo-skip" `Quick test_server_memo_skip;
          Alcotest.test_case "worker-wedge" `Quick test_server_worker_wedge;
          Alcotest.test_case "deadline" `Quick test_server_deadline;
          Alcotest.test_case "drain-loses-nothing" `Quick
            test_server_drain_loses_nothing;
          Alcotest.test_case "chaos" `Slow test_server_chaos;
        ] );
    ]
