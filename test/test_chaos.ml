(* Differential chaos test for the supervised conversion service.

   Every fault injection point runs at 1% per-call transient probability
   while a mixed corpus streams through the parallel service.  The
   contract under chaos:

   - every successful output is byte-identical to the fault-free
     sequential run (retries mask transients without corrupting results);
   - every failure keeps the class the fault-free run assigned it
     (syntax stays syntax; no injected fault is misreported);
   - no Degraded outputs and no surviving Internal errors — with a
     generous retry budget the breaker must never open at p = 0.01;
   - no exception escapes: every line gets exactly one reply, in order;
   - after disarming, the service recovers immediately and the breaker
     ends closed (it must not stick open once faults stop).

   Line count defaults to 10_000; CHAOS_LINES overrides it (the
   @chaos-smoke alias runs a reduced pass). *)

module S = Service.Supervisor
module Error = Robust.Error
module Faults = Robust.Faults
module Gen = Robust.Gen

let convert input =
  match
    Reader.read ~mode:Fp.Rounding.To_nearest_even Fp.Format_spec.binary64 input
  with
  | Error _ as e -> e
  | Ok v ->
    Dragon.Printer.print_value ~base:10 ~mode:Fp.Rounding.To_nearest_even
      ~strategy:Dragon.Scaling.Fast_estimate ~notation:Dragon.Render.Auto
      Fp.Format_spec.binary64 v

let n_lines =
  match Sys.getenv_opt "CHAOS_LINES" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ -> failwith "CHAOS_LINES must be a positive integer")
  | None -> 10_000

(* Deterministic corpus: the nasty seed list plus a seeded mix of
   plain/extreme/long-digit/garbage inputs. *)
let corpus =
  let st = Random.State.make [| 0xC4A05 |] in
  let generated =
    List.init (max 0 (n_lines - List.length Gen.nasty)) (fun _ -> Gen.any st)
  in
  let all = Gen.nasty @ generated in
  (* exactly n_lines, even if nasty alone exceeds the requested count *)
  List.filteri (fun i _ -> i < n_lines) all

(* With ~tens of guarded calls per conversion, a 1% per-call fault rate
   fails a given attempt with probability up to roughly 0.45; 25 retries
   push the per-line residual below 1e-9, so the byte-identical
   assertion over 10k lines is deterministic in practice. *)
let chaos_retry =
  {
    S.max_retries = 25;
    backoff_ms = 0.05;
    backoff_multiplier = 2.0;
    backoff_cap_ms = 0.5;
  }

let run_chaos () =
  Faults.disarm_all ();

  (* 1. fault-free sequential baseline *)
  let baseline = List.map convert corpus in

  (* 2. arm everything at 1% and stream through the parallel service *)
  Faults.reset_trip_counts ();
  List.iter (fun p -> Faults.arm ~probability:0.01 p) Faults.pipeline_points;
  (* any failure below reproduces with this exact seed and schedule *)
  Printf.printf
    "chaos: reproduce with BDPRINT_FAULTS_SEED=%d BDPRINT_FAULTS=%S\n%!"
    Faults.seed (Faults.spec_string ());

  let replies = ref [] in
  let svc =
    S.start ~jobs:4 ~queue_capacity:128 ~retry:chaos_retry
      ~breaker:{ Service.Breaker.failure_threshold = 8; cooldown_ms = 20 }
      ~emit:(fun r -> replies := r :: !replies)
      convert
  in
  List.iteri (fun i input -> S.submit svc ~lineno:(i + 1) input) corpus;

  (* 3. disarm and submit a recovery tail on the same still-running
     service: it must come back clean, with the breaker closed *)
  Faults.disarm_all ();
  let recovery = List.init 20 (fun i -> Printf.sprintf "%d.5" i) in
  List.iteri
    (fun i input -> S.submit svc ~lineno:(n_lines + i + 1) input)
    recovery;
  let stats = S.shutdown svc in
  let replies = List.rev !replies in

  let trips = Faults.total_trips () in
  Printf.printf
    "chaos: %d lines + %d recovery, %d fault trips, %d retries, breaker=%s \
     trips=%d\n\
     %!"
    n_lines (List.length recovery) trips stats.S.retries stats.S.breaker_state
    stats.S.breaker_trips;

  (* every line answered, in submission order *)
  Alcotest.(check int) "one reply per line"
    (n_lines + List.length recovery)
    (List.length replies);
  List.iteri
    (fun i (r : S.reply) ->
      Alcotest.(check int) "order preserved" (i + 1) r.S.lineno)
    replies;

  (* the chaos was real and the retries did work *)
  Alcotest.(check bool) "faults actually tripped" true (trips > 0);
  Alcotest.(check bool) "retries actually happened" true (stats.S.retries > 0);

  (* differential check against the fault-free baseline *)
  let chaos_replies = List.filteri (fun i _ -> i < n_lines) replies in
  List.iteri
    (fun i (expected, (r : S.reply)) ->
      match (expected, r.S.outcome) with
      | Ok want, S.Done got ->
        if not (String.equal want got) then
          Alcotest.failf "line %d (%S): chaos output %S <> baseline %S" (i + 1)
            r.S.input got want
      | Error want, S.Failed got ->
        let wc = Error.category want and gc = Error.category got in
        if not (String.equal wc gc) then
          Alcotest.failf "line %d (%S): chaos failure class %s <> baseline %s"
            (i + 1) r.S.input gc wc
      | Ok want, S.Failed got ->
        Alcotest.failf "line %d (%S): chaos failed (%s) but baseline says %S"
          (i + 1) r.S.input (Error.to_string got) want
      | Error want, S.Done got ->
        Alcotest.failf
          "line %d (%S): chaos produced %S but baseline fails (%s)" (i + 1)
          r.S.input got (Error.to_string want)
      | _, S.Degraded got ->
        Alcotest.failf "line %d (%S): degraded output %S under chaos" (i + 1)
          r.S.input got)
    (List.combine baseline chaos_replies);

  (* transients never surfaced, never degraded, never opened the breaker *)
  Alcotest.(check int) "no surviving internal errors" 0
    stats.S.internal_failures;
  Alcotest.(check int) "no degraded outputs" 0 stats.S.degraded;
  Alcotest.(check int) "breaker never tripped" 0 stats.S.breaker_trips;

  (* the recovery tail after disarm is entirely clean *)
  let tail = List.filteri (fun i _ -> i >= n_lines) replies in
  List.iter
    (fun (r : S.reply) ->
      match r.S.outcome with
      | S.Done _ -> ()
      | _ -> Alcotest.failf "recovery line %d not clean" r.S.lineno)
    tail;
  Alcotest.(check string) "breaker closed after disarm" "closed"
    stats.S.breaker_state

let () =
  Alcotest.run "chaos"
    [
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "1%% transient faults, %d lines" n_lines)
            `Quick run_chaos;
        ] );
    ]
