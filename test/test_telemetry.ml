(* Telemetry layer: registry semantics under concurrency, histogram
   bucket boundaries, Prometheus golden rendering, fault-trip export,
   and an end-to-end check that [bdprint --stdin --jobs N --metrics]
   reports exact counters without perturbing stdout. *)

module Metrics = Telemetry.Metrics
module Snapshot = Telemetry.Snapshot
module Error = Robust.Error
module Faults = Robust.Faults

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let test_concurrent_counters () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~help:"test" "test_concurrent_total" in
  let h =
    Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 10; 20 |]
      "test_concurrent_hist"
  in
  let per_domain = 25_000 in
  let domains = 4 in
  let work () =
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h (i mod 30)
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join spawned;
  Alcotest.(check int)
    "4-domain increments sum exactly" (domains * per_domain)
    (Metrics.value c);
  let _, _, count = Metrics.histogram_state h in
  Alcotest.(check int)
    "4-domain observations all counted" (domains * per_domain) count

let test_idempotent_registration () =
  let r = Metrics.create_registry () in
  let c1 =
    Metrics.counter ~registry:r
      ~labels:[ ("k", "v") ]
      ~help:"test" "test_idem_total"
  in
  let c2 =
    Metrics.counter ~registry:r
      ~labels:[ ("k", "v") ]
      ~help:"test" "test_idem_total"
  in
  Metrics.incr c1;
  Alcotest.(check int) "same series, same cell" 1 (Metrics.value c2);
  (* a different label set is a different series *)
  let c3 =
    Metrics.counter ~registry:r
      ~labels:[ ("k", "other") ]
      ~help:"test" "test_idem_total"
  in
  Alcotest.(check int) "distinct labels, distinct cell" 0 (Metrics.value c3);
  (* re-registering a histogram with different bounds is a bug, not a
     silent new series *)
  let _ =
    Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 1; 2 |]
      "test_idem_hist"
  in
  Alcotest.check_raises "conflicting bounds rejected"
    (Invalid_argument
       "Metrics.histogram: test_idem_hist already registered with other bounds")
    (fun () ->
      ignore
        (Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 1; 3 |]
           "test_idem_hist"));
  Alcotest.check_raises "type conflict rejected"
    (Invalid_argument
       "Metrics.counter: test_idem_hist already registered as another type")
    (fun () ->
      ignore (Metrics.counter ~registry:r ~help:"test" "test_idem_hist"))

(* ------------------------------------------------------------------ *)
(* Histogram bucket boundaries *)

let test_histogram_buckets () =
  let r = Metrics.create_registry () in
  let h =
    Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 1; 2; 5 |]
      "test_bucket_hist"
  in
  (* bounds are inclusive upper bounds: 0,1 -> le=1; 2 -> le=2;
     3,4,5 -> le=5; 6,100 -> overflow *)
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 5; 6; 100 ];
  let counts, sum, count = Metrics.histogram_state h in
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 3; 2 |] counts;
  Alcotest.(check int) "sum" 121 sum;
  Alcotest.(check int) "count" 8 count;
  let snap = Snapshot.take ~registry:r () in
  match Snapshot.histogram_value snap "test_bucket_hist" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hv ->
    Alcotest.(check (array int)) "snapshot bounds" [| 1; 2; 5 |] hv.bounds;
    Alcotest.(check (array int))
      "snapshot counts" [| 2; 1; 3; 2 |] hv.Snapshot.counts;
    Alcotest.(check int) "snapshot sum" 121 hv.Snapshot.sum;
    Alcotest.(check int) "snapshot count" 8 hv.Snapshot.count

(* ------------------------------------------------------------------ *)
(* Prometheus golden output *)

let test_prometheus_golden () =
  let r = Metrics.create_registry () in
  let ok =
    Metrics.counter ~registry:r
      ~labels:[ ("result", "ok") ]
      ~help:"Requests by result." "demo_requests_total"
  in
  let err =
    Metrics.counter ~registry:r
      ~labels:[ ("result", "error") ]
      ~help:"Requests by result." "demo_requests_total"
  in
  let g = Metrics.gauge ~registry:r ~help:"Queue depth." "demo_queue_depth" in
  let h =
    Metrics.histogram ~registry:r ~help:"Sizes." ~bounds:[| 1; 10 |]
      "demo_sizes"
  in
  Metrics.incr ok;
  Metrics.incr ok;
  Metrics.incr err;
  Metrics.set_gauge g 7;
  List.iter (Metrics.observe h) [ 0; 5; 200 ];
  let expected =
    "# HELP demo_requests_total Requests by result.\n\
     # TYPE demo_requests_total counter\n\
     demo_requests_total{result=\"ok\"} 2\n\
     demo_requests_total{result=\"error\"} 1\n\
     # HELP demo_queue_depth Queue depth.\n\
     # TYPE demo_queue_depth gauge\n\
     demo_queue_depth 7\n\
     # HELP demo_sizes Sizes.\n\
     # TYPE demo_sizes histogram\n\
     demo_sizes_bucket{le=\"1\"} 1\n\
     demo_sizes_bucket{le=\"10\"} 2\n\
     demo_sizes_bucket{le=\"+Inf\"} 3\n\
     demo_sizes_sum 205\n\
     demo_sizes_count 3\n"
  in
  Alcotest.(check string)
    "prometheus text" expected
    (Snapshot.to_prometheus (Snapshot.take ~registry:r ()))

(* ------------------------------------------------------------------ *)
(* Fault trip counters surface as metrics *)

let test_fault_trip_metrics () =
  Faults.disarm_all ();
  Faults.reset_trip_counts ();
  let before = List.assoc "nat.divmod" (Faults.trip_counts ()) in
  (match
     Error.catch (fun () ->
         Faults.with_fault "nat.divmod" (fun () -> Faults.trip "nat.divmod"))
   with
  | Error (Error.Internal _) -> ()
  | _ -> Alcotest.fail "armed trip must surface as Internal");
  Faults.disarm_all ();
  let after = List.assoc "nat.divmod" (Faults.trip_counts ()) in
  Alcotest.(check int) "trip_counts delta" 1 (after - before);
  let snap = Snapshot.take () in
  Alcotest.(check int) "exported as bdprint_fault_trips_total" after
    (Snapshot.counter_value
       ~labels:[ ("point", "nat.divmod") ]
       snap "bdprint_fault_trips_total");
  Faults.reset_trip_counts ()

(* ------------------------------------------------------------------ *)
(* End to end: --metrics on a parallel stream *)

let bdprint_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/bdprint.exe"

let slurp path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_stream ?metrics input_file =
  let out = Filename.temp_file "telemetry" ".out" in
  let flags =
    match metrics with
    | None -> ""
    | Some file -> Printf.sprintf "--metrics %s" (Filename.quote file)
  in
  let cmd =
    Printf.sprintf "%s --stdin --jobs 4 %s < %s > %s 2> /dev/null"
      (bdprint_exe ()) flags
      (Filename.quote input_file)
      (Filename.quote out)
  in
  let status = Sys.command cmd in
  let stdout = slurp out in
  Sys.remove out;
  (status, stdout)

let prom_counter_line prom name =
  String.split_on_char '\n' prom
  |> List.exists (fun l -> String.equal l name)

(* Sum every sample of a counter family in the Prometheus text:
   "name{...} v" or "name v" lines. *)
let prom_family_sum prom name =
  String.split_on_char '\n' prom
  |> List.fold_left
       (fun acc l ->
         let prefixed p = String.length l > String.length p
                          && String.sub l 0 (String.length p) = p in
         if prefixed (name ^ "{") || prefixed (name ^ " ") then
           match String.rindex_opt l ' ' with
           | Some i ->
             acc
             + int_of_string
                 (String.sub l (i + 1) (String.length l - i - 1))
           | None -> acc
         else acc)
       0

let test_metrics_end_to_end () =
  let lines = 10_000 in
  let input = Filename.temp_file "telemetry" ".in" in
  let oc = open_out input in
  let st = Random.State.make [| 20260807 |] in
  for _ = 1 to lines do
    let x = Random.State.float st 2.0 -. 1.0 in
    let e = Random.State.int st 60 - 30 in
    Printf.fprintf oc "%.17ge%d\n" x e
  done;
  close_out oc;
  let mfile = Filename.temp_file "telemetry" ".json" in
  let pfile = Filename.chop_suffix mfile ".json" ^ ".prom" in
  let status_m, out_m = run_stream ~metrics:mfile input in
  let status_p, out_p = run_stream input in
  let prom = slurp pfile in
  let json = slurp mfile in
  List.iter Sys.remove [ input; mfile; pfile ];
  Alcotest.(check int) "metrics run exits 0" 0 status_m;
  Alcotest.(check int) "plain run exits 0" 0 status_p;
  Alcotest.(check string) "stdout is byte-identical with --metrics" out_p
    out_m;
  Alcotest.(check bool)
    "conversions_total = input lines" true
    (prom_counter_line prom
       (Printf.sprintf "bdprint_conversions_total %d" lines));
  Alcotest.(check int) "every line converted ok" lines
    (prom_family_sum prom "bdprint_conversion_results_total");
  Alcotest.(check int)
    "fast path + fallback = reader calls" lines
    (prom_family_sum prom "bdprint_reader_tier_total");
  Alcotest.(check bool) "json snapshot mentions conversions_total" true
    (let needle = "\"bdprint_conversions_total\"" in
     let n = String.length needle and l = String.length json in
     let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "concurrent increments" `Quick
            test_concurrent_counters;
          Alcotest.test_case "idempotent registration" `Quick
            test_idempotent_registration;
        ] );
      ( "histogram",
        [ Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets ]
      );
      ( "exposition",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
        ] );
      ( "faults",
        [
          Alcotest.test_case "trip counters exported" `Quick
            test_fault_trip_metrics;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "--jobs 4 --metrics exact counters" `Quick
            test_metrics_end_to_end;
        ] );
    ]
