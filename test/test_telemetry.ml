(* Telemetry layer: registry semantics under concurrency, histogram
   bucket boundaries, Prometheus golden rendering, fault-trip export,
   and an end-to-end check that [bdprint --stdin --jobs N --metrics]
   reports exact counters without perturbing stdout. *)

module Metrics = Telemetry.Metrics
module Snapshot = Telemetry.Snapshot
module Error = Robust.Error
module Faults = Robust.Faults

let slurp path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let test_concurrent_counters () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r ~help:"test" "test_concurrent_total" in
  let h =
    Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 10; 20 |]
      "test_concurrent_hist"
  in
  let per_domain = 25_000 in
  let domains = 4 in
  let work () =
    for i = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h (i mod 30)
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join spawned;
  Alcotest.(check int)
    "4-domain increments sum exactly" (domains * per_domain)
    (Metrics.value c);
  let _, _, count = Metrics.histogram_state h in
  Alcotest.(check int)
    "4-domain observations all counted" (domains * per_domain) count

let test_idempotent_registration () =
  let r = Metrics.create_registry () in
  let c1 =
    Metrics.counter ~registry:r
      ~labels:[ ("k", "v") ]
      ~help:"test" "test_idem_total"
  in
  let c2 =
    Metrics.counter ~registry:r
      ~labels:[ ("k", "v") ]
      ~help:"test" "test_idem_total"
  in
  Metrics.incr c1;
  Alcotest.(check int) "same series, same cell" 1 (Metrics.value c2);
  (* a different label set is a different series *)
  let c3 =
    Metrics.counter ~registry:r
      ~labels:[ ("k", "other") ]
      ~help:"test" "test_idem_total"
  in
  Alcotest.(check int) "distinct labels, distinct cell" 0 (Metrics.value c3);
  (* re-registering a histogram with different bounds is a bug, not a
     silent new series *)
  let _ =
    Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 1; 2 |]
      "test_idem_hist"
  in
  Alcotest.check_raises "conflicting bounds rejected"
    (Invalid_argument
       "Metrics.histogram: test_idem_hist already registered with other bounds")
    (fun () ->
      ignore
        (Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 1; 3 |]
           "test_idem_hist"));
  Alcotest.check_raises "type conflict rejected"
    (Invalid_argument
       "Metrics.counter: test_idem_hist already registered as another type")
    (fun () ->
      ignore (Metrics.counter ~registry:r ~help:"test" "test_idem_hist"))

(* ------------------------------------------------------------------ *)
(* Histogram bucket boundaries *)

let test_histogram_buckets () =
  let r = Metrics.create_registry () in
  let h =
    Metrics.histogram ~registry:r ~help:"test" ~bounds:[| 1; 2; 5 |]
      "test_bucket_hist"
  in
  (* bounds are inclusive upper bounds: 0,1 -> le=1; 2 -> le=2;
     3,4,5 -> le=5; 6,100 -> overflow *)
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 5; 6; 100 ];
  let counts, sum, count = Metrics.histogram_state h in
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 3; 2 |] counts;
  Alcotest.(check int) "sum" 121 sum;
  Alcotest.(check int) "count" 8 count;
  let snap = Snapshot.take ~registry:r () in
  match Snapshot.histogram_value snap "test_bucket_hist" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hv ->
    Alcotest.(check (array int)) "snapshot bounds" [| 1; 2; 5 |] hv.bounds;
    Alcotest.(check (array int))
      "snapshot counts" [| 2; 1; 3; 2 |] hv.Snapshot.counts;
    Alcotest.(check int) "snapshot sum" 121 hv.Snapshot.sum;
    Alcotest.(check int) "snapshot count" 8 hv.Snapshot.count

(* ------------------------------------------------------------------ *)
(* Log-linear bucket generator *)

let test_log_linear () =
  Alcotest.(check (array int))
    "one decade, 5 per decade"
    [| 100; 200; 400; 600; 800; 1000 |]
    (Metrics.log_linear ~lo:100 ~hi:1000 ());
  Alcotest.(check (array int))
    "two decades, 2 per decade"
    [| 10; 50; 100; 500; 1000 |]
    (Metrics.log_linear ~per_decade:2 ~lo:10 ~hi:1000 ());
  Alcotest.(check (array int))
    "hi off the grid is still the last bound" [| 1; 10; 25 |]
    (Metrics.log_linear ~per_decade:1 ~lo:1 ~hi:25 ());
  Alcotest.check_raises "lo < 1 rejected"
    (Invalid_argument "Metrics.log_linear: need lo >= 1") (fun () ->
      ignore (Metrics.log_linear ~lo:0 ~hi:10 ()));
  Alcotest.check_raises "hi <= lo rejected"
    (Invalid_argument "Metrics.log_linear: need hi > lo") (fun () ->
      ignore (Metrics.log_linear ~lo:10 ~hi:10 ()));
  (* the generated array passes histogram bound validation, and the same
     call yields the same array — registration stays idempotent *)
  let r = Metrics.create_registry () in
  let mk () =
    Metrics.histogram ~registry:r ~help:"test"
      ~bounds:(Metrics.log_linear ~lo:100 ~hi:10_000_000 ())
      "test_ll_hist"
  in
  let h1 = mk () and h2 = mk () in
  Metrics.observe h1 500;
  let _, _, count = Metrics.histogram_state h2 in
  Alcotest.(check int) "same series" 1 count

(* ------------------------------------------------------------------ *)
(* Exemplars *)

let test_exemplars () =
  let r = Metrics.create_registry () in
  let h =
    Metrics.histogram ~registry:r ~help:"Latency." ~bounds:[| 10; 100 |]
      "demo_latency"
  in
  Metrics.observe h 3;
  Alcotest.(check bool)
    "no exemplar before a traced observation" true
    (Metrics.exemplar_of h = None);
  Metrics.observe_ex h ~trace_id:7 42;
  Metrics.observe_ex h ~trace_id:9 17;
  (* lower-valued traced sample does not displace the max *)
  Alcotest.(check bool)
    "exemplar keeps the max traced sample" true
    (Metrics.exemplar_of h = Some (42, 7));
  Metrics.observe_ex h ~trace_id:0 10_000;
  Alcotest.(check bool)
    "trace_id 0 never becomes an exemplar" true
    (Metrics.exemplar_of h = Some (42, 7));
  let prom = Snapshot.to_prometheus (Snapshot.take ~registry:r ()) in
  let expected =
    "# HELP demo_latency Latency.\n\
     # TYPE demo_latency histogram\n\
     demo_latency_bucket{le=\"10\"} 1\n\
     demo_latency_bucket{le=\"100\"} 3 # {trace_id=\"7\"} 42\n\
     demo_latency_bucket{le=\"+Inf\"} 4\n\
     demo_latency_sum 10062\n\
     demo_latency_count 4\n"
  in
  Alcotest.(check string) "exemplar on the containing bucket" expected prom;
  let json = Snapshot.to_json (Snapshot.take ~registry:r ()) in
  let contains needle hay =
    let n = String.length needle and l = String.length hay in
    let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "json carries the exemplar" true
    (contains {|"exemplar": {"value": 42, "trace_id": 7}|} json);
  (* an overflow-bucket exemplar lands on +Inf *)
  Metrics.observe_ex h ~trace_id:11 5_000;
  let prom = Snapshot.to_prometheus (Snapshot.take ~registry:r ()) in
  Alcotest.(check bool)
    "overflow exemplar on +Inf" true
    (contains "demo_latency_bucket{le=\"+Inf\"} 5 # {trace_id=\"11\"} 5000\n"
       prom)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event golden output *)

let test_chrome_golden () =
  Telemetry.Tracing.clear ();
  Telemetry.Tracing.inject ~tid:3 ~stage:Telemetry.Tracing.Parse
    ~start_ns:1_000_000 ~dur_ns:2_500 ();
  Telemetry.Tracing.inject ~tid:3 ~stage:Telemetry.Tracing.Request
    ~start_ns:1_000_000 ~dur_ns:10_000 ~dom:2 ~note:{|a"b|} ();
  Telemetry.Tracing.inject ~tid:5 ~stage:Telemetry.Tracing.Queue_wait
    ~start_ns:990_123 ~dur_ns:7 ();
  let expected =
    "{\"traceEvents\":[\n\
     {\"name\":\"queue-wait\",\"cat\":\"bdprint\",\"ph\":\"X\",\"ts\":990.123,\"dur\":0.007,\"pid\":42,\"tid\":5,\"args\":{\"dom\":0}},\n\
     {\"name\":\"parse\",\"cat\":\"bdprint\",\"ph\":\"X\",\"ts\":1000.000,\"dur\":2.500,\"pid\":42,\"tid\":3,\"args\":{\"dom\":0}},\n\
     {\"name\":\"request\",\"cat\":\"bdprint\",\"ph\":\"X\",\"ts\":1000.000,\"dur\":10.000,\"pid\":42,\"tid\":3,\"args\":{\"dom\":2,\"note\":\"a\\\"b\"}}\n\
     ],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped\":0}}\n"
  in
  Alcotest.(check string)
    "chrome trace-event golden" expected
    (Telemetry.Tracing.to_chrome_json ~pid:42 ());
  Alcotest.(check int) "ring holds 3" 3 (Telemetry.Tracing.events_recorded ());
  Telemetry.Tracing.clear ();
  Alcotest.(check int) "clear empties" 0 (Telemetry.Tracing.events_recorded ())

let test_tracing_lifecycle () =
  Telemetry.Tracing.clear ();
  Telemetry.Tracing.set_enabled true;
  Telemetry.Tracing.set_sample_every 1;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Tracing.set_enabled false;
      Telemetry.Tracing.set_sample_every 64;
      Telemetry.Tracing.clear ())
    (fun () ->
      let tid = Telemetry.Tracing.begin_request () in
      Alcotest.(check bool) "sampled at 1-in-1" true (tid <> 0);
      Alcotest.(check int) "current follows begin_request" tid
        (Telemetry.Tracing.current ());
      let t0 = Telemetry.Tracing.span () in
      Telemetry.Tracing.emit Telemetry.Tracing.Parse t0;
      Telemetry.Tracing.end_request tid;
      Alcotest.(check int) "current cleared" 0 (Telemetry.Tracing.current ());
      (* parse span + request root span *)
      Alcotest.(check int) "two spans" 2
        (Telemetry.Tracing.events_recorded ());
      (* a disabled sampler yields 0 and spans become no-ops *)
      Telemetry.Tracing.set_enabled false;
      Alcotest.(check int) "disabled sample" 0 (Telemetry.Tracing.sample ());
      Alcotest.(check int) "span against untraced" 0
        (Telemetry.Tracing.span_of 0))

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_flight_recorder () =
  Telemetry.Flight.clear ();
  Telemetry.Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Flight.set_enabled false;
      Telemetry.Flight.set_dump_path None;
      Telemetry.Flight.clear ())
    (fun () ->
      Telemetry.Flight.record ~req:12 ~kind:"admit" "0.1";
      Telemetry.Flight.record ~req:12 ~kind:"crash" {|worker=0 exn="boom"|};
      Alcotest.(check int) "two events" 2
        (Telemetry.Flight.events_recorded ());
      let jsonl = Telemetry.Flight.to_jsonl ~reason:"unit-test" () in
      let lines =
        String.split_on_char '\n' jsonl
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "header + 2 events" 3 (List.length lines);
      let contains needle hay =
        let n = String.length needle and l = String.length hay in
        let rec go i =
          i + n <= l && (String.sub hay i n = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "header names the reason" true
        (contains {|"flight_dump":true,"reason":"unit-test"|}
           (List.nth lines 0));
      Alcotest.(check bool) "event carries request id" true
        (contains {|"req":12,"kind":"admit","detail":"0.1"|}
           (List.nth lines 1));
      Alcotest.(check bool) "detail quotes escaped" true
        (contains {|\"boom\"|} (List.nth lines 2));
      (* dumps append to the configured path *)
      let path = Filename.temp_file "flight" ".jsonl" in
      Telemetry.Flight.set_dump_path (Some path);
      Telemetry.Flight.dump ~reason:"first";
      Telemetry.Flight.dump ~reason:"second";
      let dumped = slurp path in
      Sys.remove path;
      Alcotest.(check bool) "both dumps appended" true
        (contains {|"reason":"first"|} dumped
        && contains {|"reason":"second"|} dumped);
      Alcotest.(check int) "dump_count" 2 (Telemetry.Flight.dump_count ());
      (* disabled recorder drops events *)
      Telemetry.Flight.set_enabled false;
      Telemetry.Flight.record ~kind:"admit" "late";
      Alcotest.(check int) "disabled record is a no-op" 2
        (Telemetry.Flight.events_recorded ()))

(* ------------------------------------------------------------------ *)
(* Prometheus golden output *)

let test_prometheus_golden () =
  let r = Metrics.create_registry () in
  let ok =
    Metrics.counter ~registry:r
      ~labels:[ ("result", "ok") ]
      ~help:"Requests by result." "demo_requests_total"
  in
  let err =
    Metrics.counter ~registry:r
      ~labels:[ ("result", "error") ]
      ~help:"Requests by result." "demo_requests_total"
  in
  let g = Metrics.gauge ~registry:r ~help:"Queue depth." "demo_queue_depth" in
  let h =
    Metrics.histogram ~registry:r ~help:"Sizes." ~bounds:[| 1; 10 |]
      "demo_sizes"
  in
  Metrics.incr ok;
  Metrics.incr ok;
  Metrics.incr err;
  Metrics.set_gauge g 7;
  List.iter (Metrics.observe h) [ 0; 5; 200 ];
  let expected =
    "# HELP demo_requests_total Requests by result.\n\
     # TYPE demo_requests_total counter\n\
     demo_requests_total{result=\"ok\"} 2\n\
     demo_requests_total{result=\"error\"} 1\n\
     # HELP demo_queue_depth Queue depth.\n\
     # TYPE demo_queue_depth gauge\n\
     demo_queue_depth 7\n\
     # HELP demo_sizes Sizes.\n\
     # TYPE demo_sizes histogram\n\
     demo_sizes_bucket{le=\"1\"} 1\n\
     demo_sizes_bucket{le=\"10\"} 2\n\
     demo_sizes_bucket{le=\"+Inf\"} 3\n\
     demo_sizes_sum 205\n\
     demo_sizes_count 3\n"
  in
  Alcotest.(check string)
    "prometheus text" expected
    (Snapshot.to_prometheus (Snapshot.take ~registry:r ()))

(* ------------------------------------------------------------------ *)
(* Fault trip counters surface as metrics *)

let test_fault_trip_metrics () =
  Faults.disarm_all ();
  Faults.reset_trip_counts ();
  let before = List.assoc "nat.divmod" (Faults.trip_counts ()) in
  (match
     Error.catch (fun () ->
         Faults.with_fault "nat.divmod" (fun () -> Faults.trip "nat.divmod"))
   with
  | Error (Error.Internal _) -> ()
  | _ -> Alcotest.fail "armed trip must surface as Internal");
  Faults.disarm_all ();
  let after = List.assoc "nat.divmod" (Faults.trip_counts ()) in
  Alcotest.(check int) "trip_counts delta" 1 (after - before);
  let snap = Snapshot.take () in
  Alcotest.(check int) "exported as bdprint_fault_trips_total" after
    (Snapshot.counter_value
       ~labels:[ ("point", "nat.divmod") ]
       snap "bdprint_fault_trips_total");
  Faults.reset_trip_counts ()

(* ------------------------------------------------------------------ *)
(* End to end: --metrics on a parallel stream *)

let bdprint_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/bdprint.exe"

let run_stream ?metrics input_file =
  let out = Filename.temp_file "telemetry" ".out" in
  let flags =
    match metrics with
    | None -> ""
    | Some file -> Printf.sprintf "--metrics %s" (Filename.quote file)
  in
  let cmd =
    Printf.sprintf "%s --stdin --jobs 4 %s < %s > %s 2> /dev/null"
      (bdprint_exe ()) flags
      (Filename.quote input_file)
      (Filename.quote out)
  in
  let status = Sys.command cmd in
  let stdout = slurp out in
  Sys.remove out;
  (status, stdout)

let prom_counter_line prom name =
  String.split_on_char '\n' prom
  |> List.exists (fun l -> String.equal l name)

(* Sum every sample of a counter family in the Prometheus text:
   "name{...} v" or "name v" lines. *)
let prom_family_sum prom name =
  String.split_on_char '\n' prom
  |> List.fold_left
       (fun acc l ->
         let prefixed p = String.length l > String.length p
                          && String.sub l 0 (String.length p) = p in
         if prefixed (name ^ "{") || prefixed (name ^ " ") then
           match String.rindex_opt l ' ' with
           | Some i ->
             acc
             + int_of_string
                 (String.sub l (i + 1) (String.length l - i - 1))
           | None -> acc
         else acc)
       0

let test_metrics_end_to_end () =
  let lines = 10_000 in
  let input = Filename.temp_file "telemetry" ".in" in
  let oc = open_out input in
  let st = Random.State.make [| 20260807 |] in
  for _ = 1 to lines do
    let x = Random.State.float st 2.0 -. 1.0 in
    let e = Random.State.int st 60 - 30 in
    Printf.fprintf oc "%.17ge%d\n" x e
  done;
  close_out oc;
  let mfile = Filename.temp_file "telemetry" ".json" in
  let pfile = Filename.chop_suffix mfile ".json" ^ ".prom" in
  let status_m, out_m = run_stream ~metrics:mfile input in
  let status_p, out_p = run_stream input in
  let prom = slurp pfile in
  let json = slurp mfile in
  List.iter Sys.remove [ input; mfile; pfile ];
  Alcotest.(check int) "metrics run exits 0" 0 status_m;
  Alcotest.(check int) "plain run exits 0" 0 status_p;
  Alcotest.(check string) "stdout is byte-identical with --metrics" out_p
    out_m;
  Alcotest.(check bool)
    "conversions_total = input lines" true
    (prom_counter_line prom
       (Printf.sprintf "bdprint_conversions_total %d" lines));
  Alcotest.(check int) "every line converted ok" lines
    (prom_family_sum prom "bdprint_conversion_results_total");
  Alcotest.(check int)
    "fast path + fallback = reader calls" lines
    (prom_family_sum prom "bdprint_reader_tier_total");
  Alcotest.(check bool) "json snapshot mentions conversions_total" true
    (let needle = "\"bdprint_conversions_total\"" in
     let n = String.length needle and l = String.length json in
     let rec go i = i + n <= l && (String.sub json i n = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "telemetry"
    [
      ( "registry",
        [
          Alcotest.test_case "concurrent increments" `Quick
            test_concurrent_counters;
          Alcotest.test_case "idempotent registration" `Quick
            test_idempotent_registration;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "log-linear bounds" `Quick test_log_linear;
          Alcotest.test_case "exemplars" `Quick test_exemplars;
        ] );
      ( "exposition",
        [
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "chrome trace-event golden" `Quick
            test_chrome_golden;
          Alcotest.test_case "request lifecycle" `Quick test_tracing_lifecycle;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring, jsonl and dumps" `Quick
            test_flight_recorder;
        ] );
      ( "faults",
        [
          Alcotest.test_case "trip counters exported" `Quick
            test_fault_trip_metrics;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "--jobs 4 --metrics exact counters" `Quick
            test_metrics_end_to_end;
        ] );
    ]
