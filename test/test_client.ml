(* Tests for the resilient daemon client (Net.Client): typed address
   parsing, connection pooling, retry/failover, endpoint ejection and
   HEALTHZ readmission, honored SHED retry-after hints, hedged requests,
   the local fallback tier, a 10k-request end-to-end chaos run through
   the client (worker kills, a worker wedge, slow/partial/malformed
   server writes, a daemon restart) asserting zero wrong conversions,
   and kill -9 failover across real bdprintd subprocesses. *)

module Client = Net.Client
module Server = Net.Server
module Wire = Net.Wire
module Error = Robust.Error
module Faults = Robust.Faults

let convert_real input =
  match
    Reader.read ~mode:Fp.Rounding.To_nearest_even Fp.Format_spec.binary64 input
  with
  | Error _ as e -> e
  | Ok v ->
    Dragon.Printer.print_value ~base:10 ~mode:Fp.Rounding.To_nearest_even
      ~strategy:Dragon.Scaling.Fast_estimate ~notation:Dragon.Render.Auto
      Fp.Format_spec.binary64 v

(* tight timeouts and cooldowns so failure paths run in milliseconds *)
let quick_config =
  {
    Client.default_config with
    Client.connect_timeout_ms = 500;
    backoff_ms = 1.0;
    backoff_cap_ms = 10.0;
    eject_cooldown_ms = 100;
  }

let start_server ?(config = Server.default_config) ?(port = 0)
    ?(convert = convert_real) () =
  match Server.start ~config ~convert (Server.Tcp ("127.0.0.1", port)) with
  | Result.Ok s -> s
  | Result.Error e -> Alcotest.failf "server start: %s" (Error.to_string e)

let stop_server s =
  Server.drain s;
  ignore (Server.wait s)

let server_addr s = Client.Tcp ("127.0.0.1", Option.get (Server.port s))

(* a TCP port that refuses connections: bind ephemeral, then close *)
let dead_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let check_ok name expected = function
  | Result.Ok o -> Alcotest.(check string) name expected o.Client.output
  | Result.Error e -> Alcotest.failf "%s: %s" name (Error.to_string e)

(* {2 Address parsing} *)

let test_parse_addr () =
  let ok s = Result.get_ok (Client.parse_addr s) in
  Alcotest.(check bool) "host:port" true
    (ok "example.com:7070" = Client.Tcp ("example.com", 7070));
  Alcotest.(check bool) ":port" true
    (ok ":7070" = Client.Tcp ("127.0.0.1", 7070));
  Alcotest.(check bool) "bare port" true
    (ok "7070" = Client.Tcp ("127.0.0.1", 7070));
  Alcotest.(check bool) "unix path" true
    (ok "unix:/tmp/bd.sock" = Client.Unix_path "/tmp/bd.sock");
  Alcotest.(check bool) "trimmed" true
    (ok "  :7070 " = Client.Tcp ("127.0.0.1", 7070));
  let err s =
    match Client.parse_addr s with
    | Result.Error e -> Alcotest.(check string) "range class" "range" (Error.category e)
    | Result.Ok _ -> Alcotest.failf "%S should not parse" s
  in
  err "";
  err "nonsense";
  err "host:0";
  err "host:70000";
  err "host:port";
  err "0";
  err "unix:";
  Alcotest.(check string) "round-trip" "127.0.0.1:7070"
    (Client.addr_to_string (ok ":7070"))

let test_parse_addrs () =
  Alcotest.(check bool) "list" true
    (Result.get_ok (Client.parse_addrs "7070, :7071,host:7072")
    = [
        Client.Tcp ("127.0.0.1", 7070);
        Client.Tcp ("127.0.0.1", 7071);
        Client.Tcp ("host", 7072);
      ]);
  Alcotest.(check bool) "skips empty segments" true
    (Result.get_ok (Client.parse_addrs "7070,,7071")
    = [ Client.Tcp ("127.0.0.1", 7070); Client.Tcp ("127.0.0.1", 7071) ]);
  Alcotest.(check bool) "empty list rejected" true
    (Result.is_error (Client.parse_addrs " , ,"));
  Alcotest.(check bool) "one bad addr poisons the list" true
    (Result.is_error (Client.parse_addrs "7070,bogus,7071"))

(* {2 Basic conversation and pooling} *)

let test_basic_and_pooling () =
  let server = start_server () in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let c = Client.create ~config:quick_config [ server_addr server ] in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  check_ok "first" "0.1" (Client.convert c "0.1");
  check_ok "second" "1e23" (Client.convert c "1e23");
  check_ok "third" "-2.5" (Client.convert c "-2.5");
  (match Client.convert c "0.5" with
  | Result.Ok o ->
    Alcotest.(check bool) "remote tier" true
      (o.Client.tier = Client.Remote (server_addr server));
    Alcotest.(check int) "single attempt" 1 o.Client.attempts;
    Alcotest.(check bool) "not degraded" false o.Client.degraded
  | Result.Error e -> Alcotest.failf "convert: %s" (Error.to_string e));
  let s = Client.stats c in
  Alcotest.(check int) "requests" 4 s.Client.requests;
  Alcotest.(check int) "remote ok" 4 s.Client.remote_ok;
  (* serial requests reuse one pooled connection *)
  Alcotest.(check int) "one socket total" 1 s.Client.reconnects;
  Alcotest.(check int) "no retries" 0 s.Client.retries

let test_determinative_errors () =
  let server = start_server () in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  (* the local fallback would also fail — but it must not even be
     consulted: a remote syntax verdict is determinative *)
  let local_calls = ref 0 in
  let local input =
    incr local_calls;
    convert_real input
  in
  let c =
    Client.create ~config:quick_config ~local [ server_addr server ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.convert c "not-a-number" with
  | Result.Error e ->
    Alcotest.(check string) "syntax class" "syntax" (Error.category e)
  | Result.Ok o -> Alcotest.failf "bogus input converted to %S" o.Client.output);
  Alcotest.(check int) "local fallback not consulted" 0 !local_calls;
  let s = Client.stats c in
  Alcotest.(check int) "typed error counted" 1 s.Client.typed_errors;
  Alcotest.(check int) "no retries on determinative errors" 0 s.Client.retries;
  (* the connection survived the error reply: next request reuses it *)
  check_ok "stream intact" "0.25" (Client.convert c "0.25");
  Alcotest.(check int) "still one socket" 1 (Client.stats c).Client.reconnects

(* {2 Fallback, failover, ejection, readmission} *)

let test_local_fallback_tier () =
  let c =
    Client.create ~config:quick_config ~local:convert_real
      [ Client.Tcp ("127.0.0.1", dead_port ()) ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.convert c "0.1" with
  | Result.Ok o ->
    Alcotest.(check string) "fallback output" "0.1" o.Client.output;
    Alcotest.(check bool) "local tier" true (o.Client.tier = Client.Local)
  | Result.Error e -> Alcotest.failf "fallback: %s" (Error.to_string e));
  let s = Client.stats c in
  Alcotest.(check int) "local fallback counted" 1 s.Client.local_fallbacks;
  Alcotest.(check bool) "endpoint ejected" true (s.Client.ejections >= 1)

let test_no_fallback_typed_error () =
  let c =
    Client.create ~config:quick_config
      [ Client.Tcp ("127.0.0.1", dead_port ()) ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.convert c "0.1" with
  | Result.Error e ->
    Alcotest.(check string) "internal class" "internal" (Error.category e)
  | Result.Ok _ -> Alcotest.fail "dead endpoint cannot convert"

let test_failover_and_ejection () =
  let server = start_server () in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let dead = Client.Tcp ("127.0.0.1", dead_port ()) in
  let c = Client.create ~config:quick_config [ dead; server_addr server ] in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  for i = 1 to 8 do
    check_ok (Printf.sprintf "request %d" i) "0.5" (Client.convert c "0.5")
  done;
  let s = Client.stats c in
  Alcotest.(check int) "all answered remotely" 8 s.Client.remote_ok;
  Alcotest.(check int) "dead endpoint ejected once" 1 s.Client.ejections;
  (* within the cooldown the dead endpoint reads as unusable *)
  (match Client.endpoint_states c with
  | [ (_, dead_usable); (_, live_usable) ] ->
    Alcotest.(check bool) "dead unusable" false dead_usable;
    Alcotest.(check bool) "live usable" true live_usable
  | l -> Alcotest.failf "expected 2 endpoints, got %d" (List.length l));
  Alcotest.(check bool) "failover retries happened" true (s.Client.retries >= 3)

let test_readmission_after_restart () =
  let port = dead_port () in
  let c =
    Client.create ~config:quick_config ~local:convert_real
      [ Client.Tcp ("127.0.0.1", port) ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* endpoint down: local fallback, endpoint ejected *)
  (match Client.convert c "0.1" with
  | Result.Ok { Client.tier = Client.Local; _ } -> ()
  | Result.Ok _ -> Alcotest.fail "dead endpoint answered"
  | Result.Error e -> Alcotest.failf "fallback: %s" (Error.to_string e));
  Alcotest.(check bool) "ejected" true ((Client.stats c).Client.ejections >= 1);
  (* the daemon comes back on the same address; once the cooldown
     elapses the next request HEALTHZ-probes and readmits it *)
  let server = start_server ~port () in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  Thread.delay 0.15;
  (match Client.convert c "0.5" with
  | Result.Ok o ->
    Alcotest.(check string) "remote again" "0.5" o.Client.output;
    Alcotest.(check bool) "remote tier" true
      (o.Client.tier = Client.Remote (Client.Tcp ("127.0.0.1", port)))
  | Result.Error e -> Alcotest.failf "readmitted convert: %s" (Error.to_string e));
  Alcotest.(check int) "readmission counted" 1
    (Client.stats c).Client.readmissions

(* {2 Shed hints and deadlines} *)

(* raw helper connection for occupying the daemon's only admission slot *)
let raw_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 30.0;
  fd

let raw_send fd s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      go (off + n) (len - n)
    end
  in
  go 0 (Bytes.length b)

let test_shed_retry_after_honored () =
  let slow input =
    Unix.sleepf 0.05;
    convert_real input
  in
  let config =
    {
      Server.default_config with
      Server.jobs = 1;
      admission_capacity = 1;
      cache_capacity = 0;
    }
  in
  let server = start_server ~config ~convert:slow () in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let port = Option.get (Server.port server) in
  let c =
    Client.create
      ~config:{ quick_config with Client.max_attempts = 10 }
      [ Client.Tcp ("127.0.0.1", port) ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* warm the daemon's service-time EWMA so its retry-after hints are
     meaningful (~50 ms), then occupy the single admission slot *)
  check_ok "warmup" "0.1" (Client.convert c "0.1");
  let occupier = raw_connect port in
  raw_send occupier "CONV 0.5\n";
  Thread.delay 0.005;
  (* the client gets SHED queue-full, honors the hint, retries, wins *)
  check_ok "shed then converted" "1.5" (Client.convert c "1.5");
  let s = Client.stats c in
  Alcotest.(check bool) "shed honored" true (s.Client.sheds_honored >= 1);
  Alcotest.(check bool) "request retried" true (s.Client.retries >= 1);
  Unix.close occupier

let test_client_deadline () =
  let slow input =
    Unix.sleepf 0.5;
    convert_real input
  in
  let config = { Server.default_config with Server.cache_capacity = 0 } in
  let server = start_server ~config ~convert:slow () in
  Fun.protect ~finally:(fun () -> stop_server server) @@ fun () ->
  let c = Client.create ~config:quick_config [ server_addr server ] in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match Client.convert c ~deadline_ms:60 "0.1" with
  | Result.Error e ->
    Alcotest.(check string) "budget class" "budget" (Error.category e)
  | Result.Ok o -> Alcotest.failf "converted %S past the deadline" o.Client.output);
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "deadline bounded the wait" true (elapsed < 0.45)

(* {2 Hedging} *)

let test_hedged_requests () =
  let slow input =
    Unix.sleepf 0.3;
    convert_real input
  in
  let fast = start_server () in
  let lame =
    start_server
      ~config:{ Server.default_config with Server.cache_capacity = 0 }
      ~convert:slow ()
  in
  Fun.protect
    ~finally:(fun () ->
      stop_server lame;
      stop_server fast)
  @@ fun () ->
  (* the slow endpoint is listed first, so it is the primary pick; the
     hedge fires after 20 ms and the fast endpoint answers first *)
  let c =
    Client.create
      ~config:{ quick_config with Client.hedge_ms = Some 20 }
      [ server_addr lame; server_addr fast ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (match Client.convert c "0.1" with
  | Result.Ok o ->
    Alcotest.(check string) "output" "0.1" o.Client.output;
    Alcotest.(check bool) "answered by the fast endpoint" true
      (o.Client.tier = Client.Remote (server_addr fast))
  | Result.Error e -> Alcotest.failf "hedged convert: %s" (Error.to_string e));
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "did not wait for the slow endpoint" true
    (elapsed < 0.25);
  let s = Client.stats c in
  Alcotest.(check int) "hedge launched" 1 s.Client.hedges;
  Alcotest.(check int) "hedge won" 1 s.Client.hedge_wins

(* {2 A deliberately unreliable daemon}

   A minimal Wire-speaking server used to aim the net.* fault points at
   the CLIENT side of the protocol: per request it may emit a malformed
   reply frame, stall, or split the write — otherwise it answers
   correctly.  The resilient client must absorb all of it. *)

let start_vandal () =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 64;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let write fd s =
    try raw_send fd s
    with Unix.Unix_error (_, _, _) -> ()
  in
  let serve cfd =
    let buf = Bytes.create 4096 in
    let acc = Buffer.create 128 in
    let alive = ref true in
    (try
       while !alive do
         let n = Unix.read cfd buf 0 (Bytes.length buf) in
         if n = 0 then alive := false
         else
           String.split_on_char '\n' (Bytes.sub_string buf 0 n)
           |> List.iteri (fun i piece ->
                  if i = 0 then Buffer.add_string acc piece
                  else begin
                    let line = Buffer.contents acc in
                    Buffer.clear acc;
                    Buffer.add_string acc piece;
                    match Wire.parse_request line with
                    | Ok (Wire.Conv { input; tid = _ }) ->
                      if Faults.fires "net.malformed-frame" then
                        write cfd "BOGUS ???\n"
                      else begin
                        if Faults.fires "net.slow-client" then
                          Thread.delay 0.002;
                        let reply =
                          match convert_real input with
                          | Ok o -> Wire.Converted o
                          | Error e ->
                            Wire.Failed
                              {
                                cls = Error.category e;
                                detail = Error.to_string e;
                              }
                        in
                        let s = Wire.render_reply reply in
                        if
                          String.length s > 1
                          && Faults.fires "net.partial-write"
                        then begin
                          let half = String.length s / 2 in
                          write cfd (String.sub s 0 half);
                          Thread.delay 0.001;
                          write cfd
                            (String.sub s half (String.length s - half))
                        end
                        else write cfd s
                      end
                    | Ok (Wire.Deadline ms) ->
                      write cfd
                        (Wire.render_reply
                           (Wire.Converted ("deadline=" ^ string_of_int ms)))
                    | Ok Wire.Healthz ->
                      write cfd (Wire.render_reply (Wire.Ready ""))
                    | Ok Wire.Ping -> write cfd (Wire.render_reply Wire.Pong)
                    | Ok _ | Error _ ->
                      write cfd
                        (Wire.render_reply
                           (Wire.Failed { cls = "proto"; detail = "vandal" }))
                  end)
       done
     with Unix.Unix_error (_, _, _) -> ());
    try Unix.close cfd with Unix.Unix_error (_, _, _) -> ()
  in
  let accept_loop () =
    try
      while true do
        let cfd, _ = Unix.accept lfd in
        ignore (Thread.create serve cfd)
      done
    with Unix.Unix_error (_, _, _) -> ()
  in
  let th = Thread.create accept_loop () in
  let stop () =
    (try Unix.shutdown lfd Unix.SHUTDOWN_ALL
     with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close lfd with Unix.Unix_error (_, _, _) -> ());
    Thread.join th
  in
  (port, stop)

let test_malformed_reply_recovery () =
  Faults.reset_call_counts ();
  (* exactly the first vandal reply is garbage; everything after is clean *)
  Faults.arm_at ~call:1 "net.malformed-frame";
  Fun.protect
    ~finally:(fun () ->
      Faults.disarm_all ();
      Faults.reset_call_counts ())
  @@ fun () ->
  let port, stop = start_vandal () in
  Fun.protect ~finally:stop @@ fun () ->
  let c =
    Client.create ~config:quick_config [ Client.Tcp ("127.0.0.1", port) ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* first reply is garbage: the client drops the connection, retries on
     a fresh one, and still returns the right answer *)
  check_ok "recovered" "0.1" (Client.convert c "0.1");
  let s = Client.stats c in
  Alcotest.(check bool) "a retry happened" true (s.Client.retries >= 1);
  Alcotest.(check bool) "a reconnect happened" true (s.Client.reconnects >= 2);
  check_ok "clean afterwards" "0.5" (Client.convert c "0.5")

(* {2 End-to-end chaos through the client}

   10k requests from 4 threads through one shared client, against a
   fleet of one vandal endpoint (malformed / slow / partial replies) and
   two real in-process daemons (worker kills armed, one worker wedge
   scheduled, one daemon drained and restarted mid-run), with the local
   pipeline as final fallback.  The contract: every request ends in a
   correct conversion or a typed error of the fault-free class — zero
   wrong outputs, zero unexplained failures. *)

let test_chaos_through_client () =
  let requests =
    match Sys.getenv_opt "NET_CHAOS_REQUESTS" with
    | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 10_000)
    | None -> 10_000
  in
  Faults.reset_call_counts ();
  Faults.arm ~probability:0.01 "service.worker-kill";
  Faults.arm ~probability:0.05 "net.malformed-frame";
  Faults.arm ~probability:0.01 "net.slow-client";
  Faults.arm ~probability:0.02 "net.partial-write";
  Faults.arm_at ~call:100 "service.worker-wedge";
  Faults.arm_at ~call:1 "net.daemon-restart";
  Printf.printf
    "chaos: reproduce with BDPRINT_FAULTS_SEED=%d BDPRINT_FAULTS=%S\n%!"
    Faults.seed (Faults.spec_string ());
  Fun.protect
    ~finally:(fun () ->
      Faults.disarm_all ();
      Faults.reset_call_counts ())
  @@ fun () ->
  (* corpus with fault-free expectations, computed before the run *)
  let st = Random.State.make [| Faults.seed; 0xc11e47; requests |] in
  let hot = [| "0"; "1"; "0.5"; "0.1"; "1e23"; "-2.5"; "bogus"; "1e" |] in
  let fresh_input () =
    if Random.State.int st 4 = 0 then hot.(Random.State.int st 8)
    else
      let f = Int64.float_of_bits (Random.State.int64 st Int64.max_int) in
      match classify_float f with
      | FP_nan | FP_infinite -> "0.25"
      | _ -> Printf.sprintf "%.17g" f
  in
  let corpus =
    Array.init requests (fun _ ->
        let input = fresh_input () in
        (input, convert_real input))
  in
  let vandal_port, stop_vandal = start_vandal () in
  let server_config =
    { Server.default_config with Server.jobs = 2; cache_capacity = 512 }
  in
  let server_a = ref (start_server ~config:server_config ()) in
  let port_a = Option.get (Server.port !server_a) in
  let server_b = start_server ~config:server_config () in
  let c =
    Client.create
      ~config:
        {
          quick_config with
          Client.max_attempts = 6;
          eject_cooldown_ms = 200;
        }
      ~local:convert_real
      [
        Client.Tcp ("127.0.0.1", vandal_port);
        Client.Tcp ("127.0.0.1", port_a);
        server_addr server_b;
      ]
  in
  let completed = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let wrong_class = Atomic.make 0 in
  let restarted = Atomic.make false in
  (* net.daemon-restart: once a third of the run is through, drain
     daemon A (in-flight requests finish, new ones shed draining), then
     bring it back on the same port — the client must fail over and
     later readmit it *)
  let controller =
    Thread.create
      (fun () ->
        let fired = ref false in
        while (not !fired) && Atomic.get completed < requests do
          if
            Atomic.get completed > requests / 3
            && Faults.fires "net.daemon-restart"
          then begin
            stop_server !server_a;
            Thread.delay 0.02;
            server_a := start_server ~config:server_config ~port:port_a ();
            Atomic.set restarted true;
            fired := true
          end
          else Thread.delay 0.005
        done)
      ()
  in
  let n_threads = 4 in
  let per_thread = requests / n_threads in
  let check_one idx =
    let input, expected = corpus.(idx) in
    (match (Client.convert c input, expected) with
    | Result.Ok { Client.degraded = false; output; _ }, Ok want ->
      if not (String.equal output want) then Atomic.incr wrong
    | Result.Ok { Client.degraded = true; output; _ }, Ok want ->
      if float_of_string output <> float_of_string want then
        Atomic.incr wrong
    | Result.Ok _, Error _ -> Atomic.incr wrong
    | Result.Error e, Error want ->
      if not (String.equal (Error.category e) (Error.category want)) then
        Atomic.incr wrong_class
    | Result.Error _, Ok _ ->
      (* with a local fallback tier, a convertible input must convert *)
      Atomic.incr wrong);
    Atomic.incr completed
  in
  let worker t () =
    for i = 0 to per_thread - 1 do
      check_one ((t * per_thread) + i)
    done
  in
  let threads = List.init n_threads (fun t -> Thread.create (worker t) ()) in
  List.iter Thread.join threads;
  Thread.join controller;
  let s = Client.stats c in
  Printf.printf
    "chaos: %d requests: remote-ok=%d degraded=%d local=%d errors=%d \
     retries=%d sheds=%d ejections=%d readmissions=%d restarted=%b\n\
     %!"
    (Atomic.get completed) s.Client.remote_ok s.Client.remote_degraded
    s.Client.local_fallbacks s.Client.typed_errors s.Client.retries
    s.Client.sheds_honored s.Client.ejections s.Client.readmissions
    (Atomic.get restarted);
  Alcotest.(check int) "zero wrong conversions" 0 (Atomic.get wrong);
  Alcotest.(check int) "zero misclassified failures" 0
    (Atomic.get wrong_class);
  Alcotest.(check int) "every request accounted" (n_threads * per_thread)
    (s.Client.remote_ok + s.Client.remote_degraded + s.Client.local_fallbacks
   + s.Client.typed_errors);
  Alcotest.(check bool) "daemon restart happened" true (Atomic.get restarted);
  Alcotest.(check bool) "chaos actually bit (retries happened)" true
    (s.Client.retries > 0);
  (* the surviving daemons healed every worker crash *)
  let sb = Server.stats server_b in
  Alcotest.(check int) "respawn healed every crash on B"
    sb.Server.supervisor.Service.Supervisor.crashes
    sb.Server.supervisor.Service.Supervisor.respawns;
  Client.close c;
  stop_vandal ();
  stop_server !server_a;
  stop_server server_b

(* {2 kill -9 failover across real bdprintd processes} *)

let bdprintd_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/bdprintd.exe"

let spawn_daemon () =
  let exe = bdprintd_exe () in
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process exe
      [| exe; "--listen"; "127.0.0.1:0"; "--jobs"; "2" |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  (* startup handshake: "bdprintd: listening on 127.0.0.1:PORT" *)
  let line = input_line ic in
  let port =
    match String.rindex_opt line ':' with
    | Some i ->
      int_of_string (String.sub line (i + 1) (String.length line - i - 1))
    | None -> Alcotest.failf "bad handshake %S" line
  in
  (pid, ic, port)

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error (_, _, _) -> ()

let test_kill9_failover () =
  let pid_a, ic_a, port_a = spawn_daemon () in
  let pid_b, ic_b, port_b = spawn_daemon () in
  Fun.protect
    ~finally:(fun () ->
      reap pid_a;
      reap pid_b;
      close_in_noerr ic_a;
      close_in_noerr ic_b)
  @@ fun () ->
  let c =
    Client.create
      ~config:{ quick_config with Client.eject_cooldown_ms = 10_000 }
      ~local:convert_real
      [
        Client.Tcp ("127.0.0.1", port_a); Client.Tcp ("127.0.0.1", port_b);
      ]
  in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let inputs = [| "0.1"; "1e23"; "-2.5"; "0.5"; "6.125" |] in
  let wrong = ref 0 in
  for i = 1 to 200 do
    (* kill -9 daemon A mid-stream: no drain, no goodbye — in-flight
       requests die with the process and must fail over to B *)
    if i = 50 then begin
      Unix.kill pid_a Sys.sigkill;
      ignore (Unix.waitpid [] pid_a)
    end;
    let input = inputs.(i mod Array.length inputs) in
    match Client.convert c input with
    | Result.Ok o -> if not (String.equal o.Client.output input) then incr wrong
    | Result.Error e ->
      Alcotest.failf "request %d failed: %s" i (Error.to_string e)
  done;
  Alcotest.(check int) "zero wrong conversions across the kill" 0 !wrong;
  let s = Client.stats c in
  Alcotest.(check bool) "killed endpoint ejected" true (s.Client.ejections >= 1);
  Alcotest.(check bool) "stream kept converting remotely" true
    (s.Client.remote_ok = 200);
  (* kill the replica too: the local tier carries the stream *)
  Unix.kill pid_b Sys.sigkill;
  ignore (Unix.waitpid [] pid_b);
  for i = 1 to 5 do
    match Client.convert c "0.25" with
    | Result.Ok o ->
      Alcotest.(check string)
        (Printf.sprintf "local %d" i)
        "0.25" o.Client.output
    | Result.Error e -> Alcotest.failf "local tier: %s" (Error.to_string e)
  done;
  Alcotest.(check bool) "local fallbacks counted" true
    ((Client.stats c).Client.local_fallbacks >= 5)

(* {2 CLI exit codes} *)

let bdprint_exe () =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/bdprint.exe"

let test_connect_addr_exit_codes () =
  let run args =
    Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (bdprint_exe ()) args)
  in
  (* malformed --connect addresses: typed range error, exit 2, up front *)
  Alcotest.(check int) "port out of range" 2 (run "--connect 70000 0.5");
  Alcotest.(check int) "empty unix path" 2 (run "--connect unix: 0.5");
  Alcotest.(check int) "garbage address" 2 (run "--connect nonsense 0.5");
  Alcotest.(check int) "bad addr in list" 2 (run "--connect 7070,bogus 0.5");
  (* well-formed but unreachable: the local fallback answers, exit 0 *)
  let tmp = Filename.temp_file "bdprint_connect" ".out" in
  let st =
    Sys.command
      (Printf.sprintf "%s --connect 127.0.0.1:%d 0.5 > %s 2>/dev/null"
         (bdprint_exe ()) (dead_port ()) tmp)
  in
  let ic = open_in tmp in
  let out = input_line ic in
  close_in ic;
  Sys.remove tmp;
  Alcotest.(check int) "fallback exit 0" 0 st;
  Alcotest.(check string) "fallback output" "0.5" out;
  (* --hedge-ms without --connect is a usage error *)
  Alcotest.(check bool) "hedge-ms needs connect" true
    (run "--hedge-ms 5 0.5" <> 0)

let () =
  Alcotest.run "client"
    [
      ( "addr",
        [
          Alcotest.test_case "parse" `Quick test_parse_addr;
          Alcotest.test_case "parse lists" `Quick test_parse_addrs;
        ] );
      ( "conversation",
        [
          Alcotest.test_case "basic + pooling" `Quick test_basic_and_pooling;
          Alcotest.test_case "determinative errors" `Quick
            test_determinative_errors;
          Alcotest.test_case "deadline" `Quick test_client_deadline;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "local fallback" `Quick test_local_fallback_tier;
          Alcotest.test_case "no fallback = typed error" `Quick
            test_no_fallback_typed_error;
          Alcotest.test_case "failover + ejection" `Quick
            test_failover_and_ejection;
          Alcotest.test_case "readmission" `Quick test_readmission_after_restart;
          Alcotest.test_case "shed retry-after honored" `Quick
            test_shed_retry_after_honored;
          Alcotest.test_case "hedged requests" `Quick test_hedged_requests;
          Alcotest.test_case "malformed reply recovery" `Quick
            test_malformed_reply_recovery;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "10k through the client" `Slow
            test_chaos_through_client;
          Alcotest.test_case "kill -9 failover" `Slow test_kill9_failover;
        ] );
      ( "cli",
        [
          Alcotest.test_case "--connect exit codes" `Quick
            test_connect_addr_exit_codes;
        ] );
    ]
